#include "net/relay.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>

#include "obs/json_util.h"
#include "obs/trace.h"

namespace polydab::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Arrival {
  double time;
  int node;
  int item;
  double value;
  uint64_t trace_id = 0;  ///< the refresh_emitted id; 0 when tracing is off
  bool operator>(const Arrival& other) const { return time > other.time; }
};

struct HostedQuery {
  int query_index;          // into the caller's vector
  core::QueryPlan plan;
  std::vector<Vector> anchors;  // per part
};

struct Node {
  int parent = -1;
  std::vector<int> children;
  Vector view;
  std::vector<HostedQuery> hosted;
  std::vector<std::vector<int>> item_hosted;  // item -> hosted indices
  /// Filter requirement per item: min over own plans and children's reqs.
  Vector req;
  /// Per child: last value forwarded for each item.
  std::vector<Vector> last_fwd;
  /// Telemetry: refresh arrivals at this node / forwards per child edge.
  int64_t arrivals = 0;
  std::vector<int64_t> edge_forwards;
};

}  // namespace

Result<RelayMetrics> RunRelayOverlay(
    const std::vector<PolynomialQuery>& queries,
    const workload::TraceSet& traces, const Vector& rates,
    const RelayConfig& config) {
  if (queries.empty()) {
    return Status::InvalidArgument("no queries");
  }
  if (config.num_coordinators <= 0 || config.fanout < 1) {
    return Status::InvalidArgument("bad overlay shape");
  }
  const size_t n_items = traces.num_items();
  const int n_nodes = config.num_coordinators;

  Rng master(config.seed);
  sim::DelayModel delays(config.delays, master.Fork());
  RelayMetrics metrics;

  // Telemetry: propagate the registry into per-node planning/replanning.
  core::PlannerConfig planner_cfg = config.planner;
  if (planner_cfg.registry == nullptr) {
    planner_cfg.registry = config.registry;
  }
  obs::TraceSink* const trace = config.trace;
  if (planner_cfg.trace == nullptr) planner_cfg.trace = trace;
  if (trace != nullptr) {
    trace->SetNow(0.0);
    trace->SetInfo("origin", "relay");
    trace->SetInfo("method", core::Name(planner_cfg.method));
    trace->SetInfo("mu", obs::JsonNumber(planner_cfg.dual.mu));
  }

  // Build the complete tree in breadth-first order.
  std::vector<Node> nodes(static_cast<size_t>(n_nodes));
  for (int k = 1; k < n_nodes; ++k) {
    const int parent = (k - 1) / config.fanout;
    nodes[static_cast<size_t>(k)].parent = parent;
    nodes[static_cast<size_t>(parent)].children.push_back(k);
  }
  const Vector initial = traces.Snapshot(0);
  for (Node& node : nodes) {
    node.view = initial;
    node.req.assign(n_items, kInf);
    node.item_hosted.resize(n_items);
    node.last_fwd.assign(node.children.size(), initial);
    node.edge_forwards.assign(node.children.size(), 0);
  }

  // Place queries round-robin and plan them.
  std::vector<double> violated_time(queries.size(), 0.0);
  std::vector<int> host_of(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const int host = static_cast<int>(qi) % n_nodes;
    host_of[qi] = host;
    Node& node = nodes[static_cast<size_t>(host)];
    if (trace != nullptr) {
      planner_cfg.trace_node = host;
      obs::TraceQueryInfo info;
      info.query = queries[qi].id;
      info.node = host;
      info.qab = queries[qi].qab;
      for (VarId v : queries[qi].p.Variables()) {
        info.items.push_back(static_cast<int32_t>(v));
      }
      trace->AddQueryInfo(std::move(info));
    }
    auto plan = core::PlanQueryParts(queries[qi], node.view, rates,
                                     planner_cfg);
    if (!plan.ok()) {
      return Status::Internal("initial planning failed: " +
                              plan.status().ToString());
    }
    HostedQuery hq;
    hq.query_index = static_cast<int>(qi);
    hq.plan = std::move(plan).value();
    hq.anchors.resize(hq.plan.parts.size());
    for (size_t pi = 0; pi < hq.plan.parts.size(); ++pi) {
      const auto& vars = hq.plan.parts[pi].dabs.vars;
      hq.anchors[pi].resize(vars.size());
      for (size_t i = 0; i < vars.size(); ++i) {
        hq.anchors[pi][i] = node.view[static_cast<size_t>(vars[i])];
      }
    }
    const int hosted_index = static_cast<int>(node.hosted.size());
    for (VarId v : queries[qi].p.Variables()) {
      if (static_cast<size_t>(v) >= n_items) {
        return Status::InvalidArgument("query var beyond trace set");
      }
      node.item_hosted[static_cast<size_t>(v)].push_back(hosted_index);
    }
    node.hosted.push_back(std::move(hq));
  }

  // Depth of each node (root = 0); used to split coherency budgets.
  std::vector<int> depth(static_cast<size_t>(n_nodes), 0);
  for (int k = 1; k < n_nodes; ++k) {
    depth[static_cast<size_t>(k)] =
        depth[static_cast<size_t>(nodes[static_cast<size_t>(k)].parent)] + 1;
  }

  // Requirement of node n for an item: min over its own plan parts and its
  // children's requirements. Filter errors accumulate along the
  // source -> root -> ... -> host path (depth(n)+1 hops), so a host's
  // primary DAB is split equally across those hops — the
  // coherency-preserving discipline of [6]. Without the split, a depth-d
  // host could lag the source by d times its bound and silently violate
  // its QAB.
  auto own_min = [&](const Node& node, int item, int node_depth) {
    double m = kInf;
    for (int hi : node.item_hosted[static_cast<size_t>(item)]) {
      for (const core::PlanPart& part :
           node.hosted[static_cast<size_t>(hi)].plan.parts) {
        const int idx = part.dabs.IndexOf(static_cast<VarId>(item));
        if (idx >= 0) {
          m = std::min(m, part.dabs.primary[static_cast<size_t>(idx)] /
                              static_cast<double>(node_depth + 1));
        }
      }
    }
    return m;
  };
  auto refresh_req = [&](int n, int item) {
    Node& node = nodes[static_cast<size_t>(n)];
    double m = own_min(node, item, depth[static_cast<size_t>(n)]);
    for (int c : node.children) {
      m = std::min(m, nodes[static_cast<size_t>(c)].req[
                          static_cast<size_t>(item)]);
    }
    return m;
  };
  // Initialize requirements bottom-up (children have larger indices in
  // breadth-first order, so a reverse sweep sees children first).
  for (int n = n_nodes - 1; n >= 0; --n) {
    Node& node = nodes[static_cast<size_t>(n)];
    for (size_t item = 0; item < n_items; ++item) {
      node.req[item] = refresh_req(n, static_cast<int>(item));
    }
  }

  // Propagate a requirement change for one item from node n toward the
  // root. Each hop whose requirement actually changes costs one
  // DAB-change message (node -> parent, or root -> sources); on the
  // trace, each hop links back to the recompute_end that changed the
  // plan.
  auto propagate_req = [&](int n, int item, double now, uint64_t cause_id) {
    int cur = n;
    while (cur >= 0) {
      Node& node = nodes[static_cast<size_t>(cur)];
      const double fresh = refresh_req(cur, item);
      if (std::fabs(fresh - node.req[static_cast<size_t>(item)]) <=
          1e-9 * std::max(1.0, fresh)) {
        break;
      }
      if (trace != nullptr) {
        obs::TraceEvent e;
        e.time = now;
        e.kind = obs::TraceEventKind::kDabChangeSent;
        e.node = cur;
        e.item = item;
        e.cause = cause_id;
        e.a = fresh;
        e.b = node.req[static_cast<size_t>(item)];
        trace->Emit(e);
      }
      node.req[static_cast<size_t>(item)] = fresh;
      ++metrics.dab_change_messages;
      cur = node.parent;
    }
  };

  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      events;
  Vector source_value = initial;
  Vector last_pushed = initial;

  const bool recompute_every_refresh =
      config.planner.method != core::AssignmentMethod::kDualDab;

  auto deliver_until = [&](double now) {
    while (!events.empty() && events.top().time <= now) {
      const Arrival ev = events.top();
      events.pop();
      Node& node = nodes[static_cast<size_t>(ev.node)];
      ++metrics.refreshes;
      ++node.arrivals;
      uint64_t arrival_id = 0;
      if (trace != nullptr) {
        trace->SetNow(ev.time);
        obs::TraceEvent e;
        e.time = ev.time;
        e.kind = obs::TraceEventKind::kRefreshArrived;
        e.node = ev.node;
        e.item = ev.item;
        e.cause = ev.trace_id;
        e.a = ev.value;
        arrival_id = trace->Emit(e);
      }
      node.view[static_cast<size_t>(ev.item)] = ev.value;

      // Local query maintenance, identical rules to sim/simulation.cc.
      for (int hi : node.item_hosted[static_cast<size_t>(ev.item)]) {
        HostedQuery& hq = node.hosted[static_cast<size_t>(hi)];
        const int query_id =
            queries[static_cast<size_t>(hq.query_index)].id;
        for (size_t pi = 0; pi < hq.plan.parts.size(); ++pi) {
          core::PlanPart& part = hq.plan.parts[pi];
          const int idx = part.dabs.IndexOf(static_cast<VarId>(ev.item));
          if (idx < 0) continue;
          // Value-independent assignments (LAQs) never go stale.
          if (part.dabs.never_stale) continue;
          uint64_t recompute_cause = arrival_id;
          if (!recompute_every_refresh) {
            const double anchor = hq.anchors[pi][static_cast<size_t>(idx)];
            const double drift = std::fabs(ev.value - anchor);
            if (drift <= part.dabs.secondary[static_cast<size_t>(idx)] *
                             (1.0 + 1e-9)) {
              continue;
            }
            if (trace != nullptr) {
              obs::TraceEvent e;
              e.time = ev.time;
              e.kind = obs::TraceEventKind::kSecondaryViolation;
              e.node = ev.node;
              e.item = ev.item;
              e.query = query_id;
              e.part = static_cast<int32_t>(pi);
              e.cause = arrival_id;
              e.a = ev.value;
              e.b = anchor;
              e.c = part.dabs.secondary[static_cast<size_t>(idx)];
              recompute_cause = trace->Emit(e);
            }
          }
          ++metrics.recomputations;
          uint64_t start_id = 0;
          if (trace != nullptr) {
            planner_cfg.trace_node = ev.node;
            obs::TraceEvent e;
            e.time = ev.time;
            e.kind = obs::TraceEventKind::kRecomputeStart;
            e.node = ev.node;
            e.item = ev.item;
            e.query = query_id;
            e.part = static_cast<int32_t>(pi);
            e.cause = recompute_cause;
            start_id = trace->Emit(e);
          }
          auto fresh = core::ReplanPart(part, node.view, rates,
                                        planner_cfg);
          uint64_t end_id = 0;
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = ev.time;
            e.kind = obs::TraceEventKind::kRecomputeEnd;
            e.node = ev.node;
            e.item = ev.item;
            e.query = query_id;
            e.part = static_cast<int32_t>(pi);
            e.cause = start_id;
            e.flag = fresh.ok() ? 1 : 0;
            end_id = trace->Emit(e);
          }
          if (!fresh.ok()) {
            ++metrics.solver_failures;
            continue;
          }
          part.dabs = std::move(fresh).value();
          hq.anchors[pi].resize(part.dabs.vars.size());
          for (size_t i = 0; i < part.dabs.vars.size(); ++i) {
            hq.anchors[pi][i] =
                node.view[static_cast<size_t>(part.dabs.vars[i])];
          }
          for (VarId v : part.dabs.vars) {
            propagate_req(ev.node, static_cast<int>(v), ev.time, end_id);
          }
        }
      }

      // Coherency-preserving forwarding: each child receives the change
      // only if it escapes the child's subtree requirement.
      for (size_t ci = 0; ci < node.children.size(); ++ci) {
        const int child = node.children[ci];
        const double need = nodes[static_cast<size_t>(child)].req[
                                static_cast<size_t>(ev.item)];
        if (std::isinf(need)) continue;
        if (std::fabs(ev.value - node.last_fwd[ci][
                                     static_cast<size_t>(ev.item)]) > need) {
          uint64_t fwd_id = 0;
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = ev.time;
            e.kind = obs::TraceEventKind::kRefreshEmitted;
            e.node = child;       // receiving coordinator
            e.source = ev.node;   // forwarding parent
            e.item = ev.item;
            e.a = ev.value;
            e.b = need;
            e.c = node.last_fwd[ci][static_cast<size_t>(ev.item)];
            fwd_id = trace->Emit(e);
          }
          node.last_fwd[ci][static_cast<size_t>(ev.item)] = ev.value;
          ++node.edge_forwards[ci];
          events.push(Arrival{ev.time + delays.Network(), child, ev.item,
                              ev.value, fwd_id});
        }
      }
    }
  };

  for (int tick = 1; tick < traces.num_ticks; ++tick) {
    const double now = static_cast<double>(tick);
    deliver_until(now);

    // Sources feed the root through its aggregate requirement.
    for (size_t item = 0; item < n_items; ++item) {
      source_value[item] = traces.ValueAt(item, tick);
      const double need = nodes[0].req[item];
      if (std::isinf(need)) continue;
      if (std::fabs(source_value[item] - last_pushed[item]) > need) {
        uint64_t emit_id = 0;
        if (trace != nullptr) {
          trace->SetNow(now);
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kRefreshEmitted;
          e.node = 0;     // the root receives source pushes
          e.source = -1;  // the data sources themselves
          e.item = static_cast<int32_t>(item);
          e.a = source_value[item];
          e.b = need;
          e.c = last_pushed[item];
          emit_id = trace->Emit(e);
        }
        last_pushed[item] = source_value[item];
        events.push(Arrival{now + delays.Push() + delays.Network(), 0,
                            static_cast<int>(item), source_value[item],
                            emit_id});
      }
    }
    deliver_until(now);  // zero-delay semantics, as in sim/simulation.cc

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Node& host = nodes[static_cast<size_t>(host_of[qi])];
      const double at_host = queries[qi].p.Evaluate(host.view);
      const double truth = queries[qi].p.Evaluate(source_value);
      if (std::fabs(truth - at_host) > queries[qi].qab * (1.0 + 1e-9)) {
        violated_time[qi] += 1.0;
        if (trace != nullptr) {
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kFidelityViolation;
          e.node = host_of[qi];
          e.query = queries[qi].id;
          e.a = truth;
          e.b = at_host;
          e.c = queries[qi].qab;
          trace->Emit(e);
        }
      }
    }
  }

  double loss = 0.0;
  for (double v : violated_time) {
    loss += 100.0 * v / static_cast<double>(traces.num_ticks - 1);
  }
  metrics.mean_fidelity_loss_pct =
      loss / static_cast<double>(queries.size());

  if (trace != nullptr) {
    // One overlay-wide summary (node -1): the replay verifier aggregates
    // every node's events against it. The overlay samples fidelity every
    // tick with the hardcoded 1e-9 relative slack used above.
    obs::TraceRunSummary s;
    s.node = -1;
    s.queries = static_cast<int64_t>(queries.size());
    s.ticks = traces.num_ticks;
    s.fidelity_stride = 1;
    s.violation_tol = 1e-9;
    s.refreshes = metrics.refreshes;
    s.recomputations = metrics.recomputations;
    s.dab_change_messages = metrics.dab_change_messages;
    s.user_notifications = 0;  // the overlay does not model user pushes
    s.solver_failures = metrics.solver_failures;
    s.mean_fidelity_loss_pct = metrics.mean_fidelity_loss_pct;
    trace->AddRunSummary(s);
  }

  if (config.registry != nullptr) {
    obs::MetricRegistry& reg = *config.registry;
    reg.GetCounter("net.relay.refreshes")->Add(metrics.refreshes);
    reg.GetCounter("net.relay.recomputations")->Add(metrics.recomputations);
    reg.GetCounter("net.relay.dab_change_messages")
        ->Add(metrics.dab_change_messages);
    reg.GetCounter("net.relay.solver_failures")->Add(metrics.solver_failures);
    reg.GetGauge("net.relay.nodes")->Set(static_cast<double>(n_nodes));
    reg.GetGauge("net.relay.fidelity.mean_loss_pct")
        ->Set(metrics.mean_fidelity_loss_pct);
    // Per-node / per-edge traffic distributions: one sample per node
    // (refresh arrivals) and one per tree edge (forwards to that child),
    // so the report shows how evenly the overlay spreads load.
    obs::Histogram* node_hist = reg.GetHistogram("net.relay.node_arrivals");
    obs::Histogram* edge_hist = reg.GetHistogram("net.relay.edge_forwards");
    for (const Node& node : nodes) {
      node_hist->Record(static_cast<double>(node.arrivals));
      for (int64_t fwd : node.edge_forwards) {
        edge_hist->Record(static_cast<double>(fwd));
      }
    }
  }
  return metrics;
}

}  // namespace polydab::net
