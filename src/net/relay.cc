#include "net/relay.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace polydab::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Arrival {
  double time;
  int node;
  int item;
  double value;
  bool operator>(const Arrival& other) const { return time > other.time; }
};

struct HostedQuery {
  int query_index;          // into the caller's vector
  core::QueryPlan plan;
  std::vector<Vector> anchors;  // per part
};

struct Node {
  int parent = -1;
  std::vector<int> children;
  Vector view;
  std::vector<HostedQuery> hosted;
  std::vector<std::vector<int>> item_hosted;  // item -> hosted indices
  /// Filter requirement per item: min over own plans and children's reqs.
  Vector req;
  /// Per child: last value forwarded for each item.
  std::vector<Vector> last_fwd;
  /// Telemetry: refresh arrivals at this node / forwards per child edge.
  int64_t arrivals = 0;
  std::vector<int64_t> edge_forwards;
};

}  // namespace

Result<RelayMetrics> RunRelayOverlay(
    const std::vector<PolynomialQuery>& queries,
    const workload::TraceSet& traces, const Vector& rates,
    const RelayConfig& config) {
  if (queries.empty()) {
    return Status::InvalidArgument("no queries");
  }
  if (config.num_coordinators <= 0 || config.fanout < 1) {
    return Status::InvalidArgument("bad overlay shape");
  }
  const size_t n_items = traces.num_items();
  const int n_nodes = config.num_coordinators;

  Rng master(config.seed);
  sim::DelayModel delays(config.delays, master.Fork());
  RelayMetrics metrics;

  // Telemetry: propagate the registry into per-node planning/replanning.
  core::PlannerConfig planner_cfg = config.planner;
  if (planner_cfg.registry == nullptr) {
    planner_cfg.registry = config.registry;
  }

  // Build the complete tree in breadth-first order.
  std::vector<Node> nodes(static_cast<size_t>(n_nodes));
  for (int k = 1; k < n_nodes; ++k) {
    const int parent = (k - 1) / config.fanout;
    nodes[static_cast<size_t>(k)].parent = parent;
    nodes[static_cast<size_t>(parent)].children.push_back(k);
  }
  const Vector initial = traces.Snapshot(0);
  for (Node& node : nodes) {
    node.view = initial;
    node.req.assign(n_items, kInf);
    node.item_hosted.resize(n_items);
    node.last_fwd.assign(node.children.size(), initial);
    node.edge_forwards.assign(node.children.size(), 0);
  }

  // Place queries round-robin and plan them.
  std::vector<double> violated_time(queries.size(), 0.0);
  std::vector<int> host_of(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const int host = static_cast<int>(qi) % n_nodes;
    host_of[qi] = host;
    Node& node = nodes[static_cast<size_t>(host)];
    auto plan = core::PlanQueryParts(queries[qi], node.view, rates,
                                     planner_cfg);
    if (!plan.ok()) {
      return Status::Internal("initial planning failed: " +
                              plan.status().ToString());
    }
    HostedQuery hq;
    hq.query_index = static_cast<int>(qi);
    hq.plan = std::move(plan).value();
    hq.anchors.resize(hq.plan.parts.size());
    for (size_t pi = 0; pi < hq.plan.parts.size(); ++pi) {
      const auto& vars = hq.plan.parts[pi].dabs.vars;
      hq.anchors[pi].resize(vars.size());
      for (size_t i = 0; i < vars.size(); ++i) {
        hq.anchors[pi][i] = node.view[static_cast<size_t>(vars[i])];
      }
    }
    const int hosted_index = static_cast<int>(node.hosted.size());
    for (VarId v : queries[qi].p.Variables()) {
      if (static_cast<size_t>(v) >= n_items) {
        return Status::InvalidArgument("query var beyond trace set");
      }
      node.item_hosted[static_cast<size_t>(v)].push_back(hosted_index);
    }
    node.hosted.push_back(std::move(hq));
  }

  // Depth of each node (root = 0); used to split coherency budgets.
  std::vector<int> depth(static_cast<size_t>(n_nodes), 0);
  for (int k = 1; k < n_nodes; ++k) {
    depth[static_cast<size_t>(k)] =
        depth[static_cast<size_t>(nodes[static_cast<size_t>(k)].parent)] + 1;
  }

  // Requirement of node n for an item: min over its own plan parts and its
  // children's requirements. Filter errors accumulate along the
  // source -> root -> ... -> host path (depth(n)+1 hops), so a host's
  // primary DAB is split equally across those hops — the
  // coherency-preserving discipline of [6]. Without the split, a depth-d
  // host could lag the source by d times its bound and silently violate
  // its QAB.
  auto own_min = [&](const Node& node, int item, int node_depth) {
    double m = kInf;
    for (int hi : node.item_hosted[static_cast<size_t>(item)]) {
      for (const core::PlanPart& part :
           node.hosted[static_cast<size_t>(hi)].plan.parts) {
        const int idx = part.dabs.IndexOf(static_cast<VarId>(item));
        if (idx >= 0) {
          m = std::min(m, part.dabs.primary[static_cast<size_t>(idx)] /
                              static_cast<double>(node_depth + 1));
        }
      }
    }
    return m;
  };
  auto refresh_req = [&](int n, int item) {
    Node& node = nodes[static_cast<size_t>(n)];
    double m = own_min(node, item, depth[static_cast<size_t>(n)]);
    for (int c : node.children) {
      m = std::min(m, nodes[static_cast<size_t>(c)].req[
                          static_cast<size_t>(item)]);
    }
    return m;
  };
  // Initialize requirements bottom-up (children have larger indices in
  // breadth-first order, so a reverse sweep sees children first).
  for (int n = n_nodes - 1; n >= 0; --n) {
    Node& node = nodes[static_cast<size_t>(n)];
    for (size_t item = 0; item < n_items; ++item) {
      node.req[item] = refresh_req(n, static_cast<int>(item));
    }
  }

  // Propagate a requirement change for one item from node n toward the
  // root. Each hop whose requirement actually changes costs one
  // DAB-change message (node -> parent, or root -> sources).
  auto propagate_req = [&](int n, int item) {
    int cur = n;
    while (cur >= 0) {
      Node& node = nodes[static_cast<size_t>(cur)];
      const double fresh = refresh_req(cur, item);
      if (std::fabs(fresh - node.req[static_cast<size_t>(item)]) <=
          1e-9 * std::max(1.0, fresh)) {
        break;
      }
      node.req[static_cast<size_t>(item)] = fresh;
      ++metrics.dab_change_messages;
      cur = node.parent;
    }
  };

  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      events;
  Vector source_value = initial;
  Vector last_pushed = initial;

  const bool recompute_every_refresh =
      config.planner.method != core::AssignmentMethod::kDualDab;

  auto deliver_until = [&](double now) {
    while (!events.empty() && events.top().time <= now) {
      const Arrival ev = events.top();
      events.pop();
      Node& node = nodes[static_cast<size_t>(ev.node)];
      ++metrics.refreshes;
      ++node.arrivals;
      node.view[static_cast<size_t>(ev.item)] = ev.value;

      // Local query maintenance, identical rules to sim/simulation.cc.
      for (int hi : node.item_hosted[static_cast<size_t>(ev.item)]) {
        HostedQuery& hq = node.hosted[static_cast<size_t>(hi)];
        for (size_t pi = 0; pi < hq.plan.parts.size(); ++pi) {
          core::PlanPart& part = hq.plan.parts[pi];
          const int idx = part.dabs.IndexOf(static_cast<VarId>(ev.item));
          if (idx < 0) continue;
          // Value-independent assignments (LAQs) never go stale.
          if (part.dabs.never_stale) continue;
          if (!recompute_every_refresh) {
            const double drift = std::fabs(
                ev.value - hq.anchors[pi][static_cast<size_t>(idx)]);
            if (drift <= part.dabs.secondary[static_cast<size_t>(idx)] *
                             (1.0 + 1e-9)) {
              continue;
            }
          }
          ++metrics.recomputations;
          auto fresh = core::ReplanPart(part, node.view, rates,
                                        planner_cfg);
          if (!fresh.ok()) {
            ++metrics.solver_failures;
            continue;
          }
          part.dabs = std::move(fresh).value();
          hq.anchors[pi].resize(part.dabs.vars.size());
          for (size_t i = 0; i < part.dabs.vars.size(); ++i) {
            hq.anchors[pi][i] =
                node.view[static_cast<size_t>(part.dabs.vars[i])];
          }
          for (VarId v : part.dabs.vars) {
            propagate_req(ev.node, static_cast<int>(v));
          }
        }
      }

      // Coherency-preserving forwarding: each child receives the change
      // only if it escapes the child's subtree requirement.
      for (size_t ci = 0; ci < node.children.size(); ++ci) {
        const int child = node.children[ci];
        const double need = nodes[static_cast<size_t>(child)].req[
                                static_cast<size_t>(ev.item)];
        if (std::isinf(need)) continue;
        if (std::fabs(ev.value - node.last_fwd[ci][
                                     static_cast<size_t>(ev.item)]) > need) {
          node.last_fwd[ci][static_cast<size_t>(ev.item)] = ev.value;
          ++node.edge_forwards[ci];
          events.push(Arrival{ev.time + delays.Network(), child, ev.item,
                              ev.value});
        }
      }
    }
  };

  for (int tick = 1; tick < traces.num_ticks; ++tick) {
    const double now = static_cast<double>(tick);
    deliver_until(now);

    // Sources feed the root through its aggregate requirement.
    for (size_t item = 0; item < n_items; ++item) {
      source_value[item] = traces.ValueAt(item, tick);
      const double need = nodes[0].req[item];
      if (std::isinf(need)) continue;
      if (std::fabs(source_value[item] - last_pushed[item]) > need) {
        last_pushed[item] = source_value[item];
        events.push(Arrival{now + delays.Push() + delays.Network(), 0,
                            static_cast<int>(item), source_value[item]});
      }
    }
    deliver_until(now);  // zero-delay semantics, as in sim/simulation.cc

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Node& host = nodes[static_cast<size_t>(host_of[qi])];
      const double at_host = queries[qi].p.Evaluate(host.view);
      const double truth = queries[qi].p.Evaluate(source_value);
      if (std::fabs(truth - at_host) > queries[qi].qab * (1.0 + 1e-9)) {
        violated_time[qi] += 1.0;
      }
    }
  }

  double loss = 0.0;
  for (double v : violated_time) {
    loss += 100.0 * v / static_cast<double>(traces.num_ticks - 1);
  }
  metrics.mean_fidelity_loss_pct =
      loss / static_cast<double>(queries.size());

  if (config.registry != nullptr) {
    obs::MetricRegistry& reg = *config.registry;
    reg.GetCounter("net.relay.refreshes")->Add(metrics.refreshes);
    reg.GetCounter("net.relay.recomputations")->Add(metrics.recomputations);
    reg.GetCounter("net.relay.dab_change_messages")
        ->Add(metrics.dab_change_messages);
    reg.GetCounter("net.relay.solver_failures")->Add(metrics.solver_failures);
    reg.GetGauge("net.relay.nodes")->Set(static_cast<double>(n_nodes));
    reg.GetGauge("net.relay.fidelity.mean_loss_pct")
        ->Set(metrics.mean_fidelity_loss_pct);
    // Per-node / per-edge traffic distributions: one sample per node
    // (refresh arrivals) and one per tree edge (forwards to that child),
    // so the report shows how evenly the overlay spreads load.
    obs::Histogram* node_hist = reg.GetHistogram("net.relay.node_arrivals");
    obs::Histogram* edge_hist = reg.GetHistogram("net.relay.edge_forwards");
    for (const Node& node : nodes) {
      node_hist->Record(static_cast<double>(node.arrivals));
      for (int64_t fwd : node.edge_forwards) {
        edge_hist->Record(static_cast<double>(fwd));
      }
    }
  }
  return metrics;
}

}  // namespace polydab::net
