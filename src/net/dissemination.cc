#include "net/dissemination.h"

#include <cmath>

namespace polydab::net {

namespace {

/// Depth of node \p k (0-based, breadth-first order) in a complete tree
/// with the given fanout; the root has depth 0.
int TreeDepth(int k, int fanout) {
  int depth = 0;
  int level_start = 0;
  int level_size = 1;
  while (k >= level_start + level_size) {
    level_start += level_size;
    level_size *= fanout;
    ++depth;
  }
  return depth;
}

}  // namespace

Result<DisseminationMetrics> RunDissemination(
    const std::vector<PolynomialQuery>& queries,
    const workload::TraceSet& traces, const Vector& rates,
    const DisseminationConfig& config) {
  if (config.num_coordinators <= 0) {
    return Status::InvalidArgument("need at least one coordinator");
  }
  if (config.fanout < 1) {
    return Status::InvalidArgument("fanout must be >= 1");
  }

  DisseminationMetrics out;
  out.per_coordinator.resize(static_cast<size_t>(config.num_coordinators));

  for (int c = 0; c < config.num_coordinators; ++c) {
    // Round-robin query placement.
    std::vector<PolynomialQuery> mine;
    for (size_t qi = static_cast<size_t>(c); qi < queries.size();
         qi += static_cast<size_t>(config.num_coordinators)) {
      mine.push_back(queries[qi]);
    }
    if (mine.empty()) continue;

    // Each coordinator runs its own (possibly sharded) lane set:
    // sim.coord_shards and sim.shard_policy apply per coordinator, so a
    // 4-coordinator / 2-shard overlay has 8 independent lanes in total.
    sim::SimConfig sc = config.sim;
    sc.seed = config.sim.seed * 1000003 + static_cast<uint64_t>(c);
    // Per-coordinator runs share one trace sink; tagging each run's
    // events with its coordinator id keeps the interleaved streams
    // separable for the offline replay verifier.
    sc.trace_node = c;
    // Every refresh traverses depth+1 overlay hops to reach coordinator c.
    const int hops = TreeDepth(c, config.fanout) + 1;
    sc.delays.node_node_mean *= static_cast<double>(hops);

    POLYDAB_ASSIGN_OR_RETURN(sim::SimMetrics m,
                             sim::RunSimulation(mine, traces, rates, sc));
    out.per_coordinator[static_cast<size_t>(c)] = m;
    out.total.refreshes += m.refreshes;
    out.total.recomputations += m.recomputations;
    out.total.dab_change_messages += m.dab_change_messages;
    out.total.user_notifications += m.user_notifications;
    out.total.solver_failures += m.solver_failures;
    out.total.fault_drops += m.fault_drops;
    out.total.retransmits += m.retransmits;
    out.total.duplicates_suppressed += m.duplicates_suppressed;
    out.total.lease_expiries += m.lease_expiries;
    out.total.degraded_query_seconds += m.degraded_query_seconds;
    out.total.mean_fidelity_loss_pct +=
        m.mean_fidelity_loss_pct * static_cast<double>(mine.size());
  }
  out.total.mean_fidelity_loss_pct /=
      static_cast<double>(queries.empty() ? 1 : queries.size());

  // Telemetry: each coordinator's RunSimulation already accumulated the
  // shared `sim.*` counters (summed across coordinators, since they share
  // the registry); add the overlay-level load-spread distributions.
  if (config.sim.registry != nullptr) {
    obs::MetricRegistry& reg = *config.sim.registry;
    reg.GetGauge("net.dissemination.coordinators")
        ->Set(static_cast<double>(config.num_coordinators));
    obs::Histogram* per_coord_refreshes =
        reg.GetHistogram("net.dissemination.coordinator_refreshes");
    obs::Histogram* per_coord_recomputes =
        reg.GetHistogram("net.dissemination.coordinator_recomputations");
    for (const sim::SimMetrics& m : out.per_coordinator) {
      per_coord_refreshes->Record(static_cast<double>(m.refreshes));
      per_coord_recomputes->Record(static_cast<double>(m.recomputations));
    }
  }
  return out;
}

}  // namespace polydab::net
