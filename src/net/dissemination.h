#ifndef POLYDAB_NET_DISSEMINATION_H_
#define POLYDAB_NET_DISSEMINATION_H_

#include <vector>

#include "common/status.h"
#include "sim/simulation.h"

/// \file dissemination.h
/// Figure 8(c)'s setting: PPQs spread over a *network of coordinators*
/// built with the cooperative dissemination techniques of [6] (Shah et
/// al., TKDE 2004). We model the overlay as a balanced tree of
/// coordinators fed by the sources: a coordinator at depth d observes
/// d + 1 network hops of delay on every refresh, and queries are assigned
/// to coordinators round-robin. Each coordinator runs the standard
/// coordinator protocol of sim/simulation.h over its own query subset;
/// DAB coherence across the overlay follows from the per-coordinator EQI
/// merge (an upstream repeater relays any change that escapes a
/// downstream filter, which the extra hop delay models). Metrics are
/// summed across coordinators.

namespace polydab::net {

struct DisseminationConfig {
  int num_coordinators = 10;
  int fanout = 3;  ///< tree fanout; depth of coordinator k is log_f(k+1)
  sim::SimConfig sim;  ///< per-coordinator protocol configuration
};

struct DisseminationMetrics {
  sim::SimMetrics total;                 ///< summed over coordinators
  std::vector<sim::SimMetrics> per_coordinator;
};

/// \brief Run the overlay simulation: split \p queries across coordinators
/// and run each coordinator's protocol with depth-scaled delays.
Result<DisseminationMetrics> RunDissemination(
    const std::vector<PolynomialQuery>& queries,
    const workload::TraceSet& traces, const Vector& rates,
    const DisseminationConfig& config);

}  // namespace polydab::net

#endif  // POLYDAB_NET_DISSEMINATION_H_
