#ifndef POLYDAB_NET_RELAY_H_
#define POLYDAB_NET_RELAY_H_

#include <vector>

#include "common/status.h"
#include "core/planner.h"
#include "sim/delay_model.h"
#include "workload/trace.h"

/// \file relay.h
/// Faithful coherency-preserving dissemination overlay in the style of
/// Shah et al. [6] (TKDE 2004), which the paper uses for its Figure 8(c)
/// network experiments. Coordinators form a tree; the sources feed the
/// root. Every node installs, per data item, a *filter requirement* equal
/// to the minimum primary DAB over (a) the query plans it hosts itself and
/// (b) the requirements of its children. A node forwards a refresh to a
/// child only when the change escapes that child's requirement, so each
/// edge carries exactly the traffic the subtree below it needs — the
/// coherency-preserving property of [6].
///
/// dissemination.h keeps the cheaper depth-scaled-delay approximation used
/// by the Figure 8(c) sweep; RelayOverlay is the reference implementation
/// the approximation is validated against (see net_test.cc).

namespace polydab::net {

struct RelayConfig {
  int num_coordinators = 10;
  int fanout = 3;
  core::PlannerConfig planner;
  sim::DelayConfig delays;  ///< per-hop network delay model
  uint64_t seed = 1;
  /// Optional telemetry sink recording the `net.relay.*` instruments:
  /// counters mirroring RelayMetrics plus per-node arrival and per-edge
  /// forwarding-traffic histograms (one sample per node/edge at run end).
  /// Propagated into the planner/GP solver. Null = off. Not owned.
  obs::MetricRegistry* registry = nullptr;
  /// Optional causal event trace (obs/trace.h). Events are tagged with
  /// overlay node ids (root = 0); a refresh_emitted's `source` is the
  /// forwarding parent (-1 for the data sources feeding the root), its
  /// `node` the receiving coordinator. Requirement changes walking up the
  /// tree appear as one dab_change_sent per hop; the overlay installs
  /// requirements in place, so there are no installed events. Null = off.
  /// Not owned; must outlive the run.
  obs::TraceSink* trace = nullptr;
};

struct RelayMetrics {
  int64_t refreshes = 0;         ///< refresh arrivals summed over all nodes
  int64_t recomputations = 0;    ///< plan-part recomputations over all nodes
  int64_t dab_change_messages = 0;
  int64_t solver_failures = 0;
  double mean_fidelity_loss_pct = 0.0;  ///< over queries, at host nodes

  double TotalCost(double mu = core::kDefaultMu) const {
    return static_cast<double>(refreshes) +
           mu * static_cast<double>(recomputations);
  }
};

/// \brief Run the overlay: queries are placed round-robin on coordinators;
/// sources replay \p traces; refreshes relay down the tree respecting each
/// subtree's filter requirements.
Result<RelayMetrics> RunRelayOverlay(
    const std::vector<PolynomialQuery>& queries,
    const workload::TraceSet& traces, const Vector& rates,
    const RelayConfig& config);

}  // namespace polydab::net

#endif  // POLYDAB_NET_RELAY_H_
