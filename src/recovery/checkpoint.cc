#include "recovery/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "obs/json_util.h"
#include "recovery/codec.h"

namespace polydab::recovery {

namespace {

constexpr char kCkptVersion[] = "polydab.ckpt.v1";

/// Flat JSON line assembler in the json_util dialect (string and number
/// values only), matching what ParseFlatJsonLine reads back.
class LineBuilder {
 public:
  LineBuilder& Str(const char* k, const std::string& v) {
    Key(k);
    line_ += '"';
    line_ += obs::JsonEscape(v);
    line_ += '"';
    return *this;
  }
  LineBuilder& Num(const char* k, double v) {
    Key(k);
    line_ += obs::JsonNumber(v);
    return *this;
  }
  LineBuilder& Int(const char* k, long long v) {
    Key(k);
    line_ += std::to_string(v);
    return *this;
  }
  LineBuilder& UInt(const char* k, unsigned long long v) {
    Key(k);
    line_ += std::to_string(v);
    return *this;
  }
  std::string Done() { return line_ + "}"; }

 private:
  void Key(const char* k) {
    line_ += first_ ? '{' : ',';
    first_ = false;
    line_ += '"';
    line_ += k;
    line_ += "\":";
  }
  std::string line_;
  bool first_ = true;
};

/// One parsed block line, kept with its raw bytes for digest chaining.
struct Rec {
  int64_t line_number = 0;
  std::string raw;
  std::string tag;
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
};

Status LineError(int64_t line_number, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 ": " + msg);
}

Status CheckKeys(const Rec& rec, const std::set<std::string>& allowed) {
  for (const auto& [k, v] : rec.strings) {
    if (allowed.count(k) == 0) {
      return LineError(rec.line_number, "unknown key '" + k +
                                            "' in ckpt '" + rec.tag +
                                            "' record");
    }
  }
  for (const auto& [k, v] : rec.numbers) {
    if (allowed.count(k) == 0) {
      return LineError(rec.line_number, "unknown key '" + k +
                                            "' in ckpt '" + rec.tag +
                                            "' record");
    }
  }
  return Status::OK();
}

Status GetNum(const Rec& rec, const std::string& key, double* out) {
  auto it = rec.numbers.find(key);
  if (it == rec.numbers.end()) {
    return LineError(rec.line_number, "ckpt '" + rec.tag +
                                          "' record missing key '" + key +
                                          "'");
  }
  *out = it->second;
  return Status::OK();
}

Status GetInt(const Rec& rec, const std::string& key, long long* out) {
  double v = 0.0;
  POLYDAB_RETURN_NOT_OK(GetNum(rec, key, &v));
  *out = static_cast<long long>(v);
  return Status::OK();
}

Status GetStr(const Rec& rec, const std::string& key, std::string* out) {
  auto it = rec.strings.find(key);
  if (it == rec.strings.end()) {
    return LineError(rec.line_number, "ckpt '" + rec.tag +
                                          "' record missing key '" + key +
                                          "'");
  }
  *out = it->second;
  return Status::OK();
}

/// Decode a string field holding one EncodeDouble token.
Status GetTokDouble(const Rec& rec, const std::string& key, double* out) {
  std::string tok;
  POLYDAB_RETURN_NOT_OK(GetStr(rec, key, &tok));
  Status s = DecodeDouble(tok, out);
  if (!s.ok()) return LineError(rec.line_number, s.message());
  return Status::OK();
}

std::string EncodeBuckets(const std::vector<std::pair<int, int64_t>>& b) {
  std::string out;
  for (size_t i = 0; i < b.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(b[i].first);
    out += ':';
    out += std::to_string(b[i].second);
  }
  return out;
}

Status DecodeBuckets(const std::string& s,
                     std::vector<std::pair<int, int64_t>>* out) {
  out->clear();
  if (s.empty()) return Status::OK();
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) {
    const size_t colon = tok.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad bucket token '" + tok + "'");
    }
    out->emplace_back(std::stoi(tok.substr(0, colon)),
                      static_cast<int64_t>(std::stoll(tok.substr(colon + 1))));
  }
  return Status::OK();
}

/// Serialize one snapshot into its block lines (footer excluded).
std::vector<std::string> BuildBlockLines(const CheckpointState& st) {
  std::vector<std::string> lines;
  lines.reserve(8 + st.queries.size() + st.parts.size() + st.events.size() +
                st.instruments.size());
  {
    LineBuilder b;
    b.Str("t", "hdr")
        .Str("v", kCkptVersion)
        .Int("tick", st.tick)
        .Int("ticks_seen", st.ticks_seen)
        .UInt("config_fp", st.config_fp)
        .Int("items", st.num_items)
        .Int("sources", st.num_sources)
        .Int("shards", st.num_shards)
        .UInt("trace_next_id", st.trace_next_id)
        .UInt("ckpt_end_id", st.ckpt_end_id)
        .Int("fault", st.fault_mode ? 1 : 0)
        .Int("dqi", st.dqi_built ? 1 : 0)
        .Int("usr", st.updates_since_rebase)
        .Int("nq", static_cast<long long>(st.queries.size()))
        .Int("np", static_cast<long long>(st.parts.size()))
        .Int("nev", static_cast<long long>(st.events.size()))
        .Str("delay_rng", st.delay_rng)
        .Str("fault_rng", st.fault_rng)
        .Str("svc", st.service_state);
    lines.push_back(b.Done());
  }
  {
    LineBuilder b;
    b.Str("t", "met")
        .Int("refreshes", st.refreshes)
        .Int("recomputations", st.recomputations)
        .Int("dab_changes", st.dab_change_messages)
        .Int("notifications", st.user_notifications)
        .Int("solver_failures", st.solver_failures)
        .Int("drops", st.fault_drops)
        .Int("retransmits", st.retransmits)
        .Int("dups", st.duplicates_suppressed)
        .Int("leases", st.lease_expiries)
        .Num("degraded_s", st.degraded_query_seconds);
    lines.push_back(b.Done());
  }
  for (size_t i = 0; i < st.queries.size(); ++i) {
    const CheckpointQuery& q = st.queries[i];
    LineBuilder b;
    b.Str("t", "q")
        .Int("slot", static_cast<long long>(i))
        .Int("id", q.id)
        .Num("qab", q.qab)
        .Str("poly", q.poly)
        .Int("alive", q.alive ? 1 : 0)
        .Int("reg", q.reg_tick)
        .Int("dereg", q.dereg_tick)
        .Num("viol", q.violated_time)
        .Num("lastv", q.last_user_value)
        .Int("shard", q.shard)
        .Num("qval", q.query_value)
        .Int("degi", q.degraded_items)
        .UInt("dege", q.degrade_event);
    lines.push_back(b.Done());
  }
  for (const CheckpointPart& p : st.parts) {
    LineBuilder b;
    b.Str("t", "part")
        .Int("slot", p.slot)
        .Int("part", p.part)
        .Str("poly", p.poly)
        .Num("pqab", p.pqab)
        .Str("vars", EncodeInts(p.vars))
        .Str("pri", p.primary)
        .Str("sec", p.secondary)
        .Num("rate", p.recompute_rate)
        .Int("sdab", p.single_dab ? 1 : 0)
        .Int("nstale", p.never_stale ? 1 : 0)
        .Str("anchor", p.anchor);
    lines.push_back(b.Done());
  }
  {
    LineBuilder b;
    b.Str("t", "items")
        .Str("view", EncodeVector(st.view))
        .Str("src", EncodeVector(st.source_value))
        .Str("pushed", EncodeVector(st.last_pushed))
        .Str("inst", EncodeVector(st.installed_dab))
        .Str("minp", EncodeVector(st.min_primary))
        .Str("home", EncodeInts(st.item_home_shard))
        .Str("free", EncodeVector(st.shard_free_at));
    lines.push_back(b.Done());
  }
  for (size_t i = 0; i < st.item_queries.size(); ++i) {
    const bool has_q = !st.item_queries[i].empty();
    const bool has_s = i < st.item_shards.size() && !st.item_shards[i].empty();
    if (!has_q && !has_s) continue;
    LineBuilder b;
    b.Str("t", "iq").Int("i", static_cast<long long>(i));
    if (has_q) b.Str("q", EncodeInts(st.item_queries[i]));
    if (has_s) b.Str("s", EncodeInts(st.item_shards[i]));
    lines.push_back(b.Done());
  }
  for (const CheckpointEvent& e : st.events) {
    LineBuilder b;
    b.Str("t", "ev")
        .Num("time", e.time)
        .Int("k", e.type)
        .Int("item", e.item)
        .Num("val", e.value)
        .UInt("tid", e.trace_id)
        .Num("wait", e.wait)
        .Int("seq", e.seq);
    lines.push_back(b.Done());
  }
  for (const CheckpointSource& s : st.sources) {
    LineBuilder b;
    b.Str("t", "src")
        .Int("i", s.source)
        .Num("cu", s.crashed_until)
        .UInt("ce", s.crash_event)
        .Num("nh", s.next_heartbeat)
        .Num("lc", s.last_contact)
        .UInt("cte", s.contact_event);
    lines.push_back(b.Done());
  }
  for (const CheckpointItemFault& f : st.item_fault) {
    LineBuilder b;
    b.Str("t", "if")
        .Int("i", f.item)
        .Int("ns", f.next_seq)
        .Int("ds", f.delivered_seq)
        .Int("dr", f.drop_seq)
        .UInt("de", f.drop_eid)
        .Int("exp", f.expired ? 1 : 0)
        .UInt("ee", f.expire_event)
        .Int("pl", f.pending_live ? 1 : 0)
        .Int("ps", f.pending_seq)
        .Num("pv", f.pending_value)
        .UInt("pe", f.pending_emit_id)
        .Num("pr", f.pending_next_retx)
        .Int("pa", f.pending_attempts);
    lines.push_back(b.Done());
  }
  for (const CheckpointInstrument& ins : st.instruments) {
    LineBuilder b;
    b.Str("t", "reg").Str("k", std::string(1, ins.kind)).Str("name", ins.name);
    if (ins.kind == 'c') {
      b.Int("v", ins.count);
    } else if (ins.kind == 'g') {
      b.Num("v", ins.value);
    } else {
      b.Int("count", ins.count)
          .Num("sum", ins.sum)
          .Str("min", EncodeDouble(ins.raw_min))
          .Str("max", EncodeDouble(ins.raw_max))
          .Str("b", EncodeBuckets(ins.buckets));
    }
    lines.push_back(b.Done());
  }
  return lines;
}

uint32_t BlockDigest(const std::vector<std::string>& lines) {
  uint32_t h = kFnv1a32Seed;
  for (const std::string& line : lines) {
    h = Fnv1a32(line.data(), line.size(), h);
    h = Fnv1a32("\n", 1, h);
  }
  return h;
}

Status DecodeBlock(const std::vector<const Rec*>& recs, CheckpointState* st) {
  *st = CheckpointState();
  long long nq = -1, np = -1, nev = -1;
  for (const Rec* rp : recs) {
    const Rec& rec = *rp;
    if (rec.tag == "hdr") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "v", "tick", "ticks_seen", "config_fp", "items",
                "sources", "shards", "trace_next_id", "ckpt_end_id", "fault",
                "dqi", "usr", "nq", "np", "nev", "delay_rng", "fault_rng",
                "svc"}));
      std::string version;
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "v", &version));
      if (version != kCkptVersion) {
        return LineError(rec.line_number,
                         "checkpoint version skew: file says '" + version +
                             "', this build reads '" + kCkptVersion + "'");
      }
      long long v = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "tick", &v));
      st->tick = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "ticks_seen", &v));
      st->ticks_seen = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "config_fp", &v));
      st->config_fp = static_cast<uint32_t>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "items", &v));
      st->num_items = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "sources", &v));
      st->num_sources = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "shards", &v));
      st->num_shards = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "trace_next_id", &v));
      st->trace_next_id = static_cast<uint64_t>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "ckpt_end_id", &v));
      st->ckpt_end_id = static_cast<uint64_t>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "fault", &v));
      st->fault_mode = v != 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "dqi", &v));
      st->dqi_built = v != 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "usr", &v));
      st->updates_since_rebase = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "nq", &nq));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "np", &np));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "nev", &nev));
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "delay_rng", &st->delay_rng));
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "fault_rng", &st->fault_rng));
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "svc", &st->service_state));
    } else if (rec.tag == "met") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "refreshes", "recomputations", "dab_changes",
                "notifications", "solver_failures", "drops", "retransmits",
                "dups", "leases", "degraded_s"}));
      long long v = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "refreshes", &v));
      st->refreshes = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "recomputations", &v));
      st->recomputations = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "dab_changes", &v));
      st->dab_change_messages = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "notifications", &v));
      st->user_notifications = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "solver_failures", &v));
      st->solver_failures = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "drops", &v));
      st->fault_drops = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "retransmits", &v));
      st->retransmits = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "dups", &v));
      st->duplicates_suppressed = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "leases", &v));
      st->lease_expiries = v;
      POLYDAB_RETURN_NOT_OK(
          GetNum(rec, "degraded_s", &st->degraded_query_seconds));
    } else if (rec.tag == "q") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "slot", "id", "qab", "poly", "alive", "reg", "dereg",
                "viol", "lastv", "shard", "qval", "degi", "dege"}));
      long long slot = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "slot", &slot));
      if (slot != static_cast<long long>(st->queries.size())) {
        return LineError(rec.line_number,
                         "ckpt 'q' records out of slot order");
      }
      CheckpointQuery q;
      long long v = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "id", &v));
      q.id = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "qab", &q.qab));
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "poly", &q.poly));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "alive", &v));
      q.alive = v != 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "reg", &v));
      q.reg_tick = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "dereg", &v));
      q.dereg_tick = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "viol", &q.violated_time));
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "lastv", &q.last_user_value));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "shard", &v));
      q.shard = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "qval", &q.query_value));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "degi", &v));
      q.degraded_items = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "dege", &v));
      q.degrade_event = static_cast<uint64_t>(v);
      st->queries.push_back(std::move(q));
    } else if (rec.tag == "part") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "slot", "part", "poly", "pqab", "vars", "pri", "sec",
                "rate", "sdab", "nstale", "anchor"}));
      CheckpointPart p;
      long long v = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "slot", &v));
      p.slot = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "part", &v));
      p.part = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "poly", &p.poly));
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "pqab", &p.pqab));
      std::string vars;
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "vars", &vars));
      Status ds = DecodeInts(vars, &p.vars);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "pri", &p.primary));
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "sec", &p.secondary));
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "rate", &p.recompute_rate));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "sdab", &v));
      p.single_dab = v != 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "nstale", &v));
      p.never_stale = v != 0;
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "anchor", &p.anchor));
      st->parts.push_back(std::move(p));
    } else if (rec.tag == "items") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "view", "src", "pushed", "inst", "minp", "home",
                "free"}));
      std::string s;
      Status ds;
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "view", &s));
      ds = DecodeVector(s, &st->view);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "src", &s));
      ds = DecodeVector(s, &st->source_value);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "pushed", &s));
      ds = DecodeVector(s, &st->last_pushed);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "inst", &s));
      ds = DecodeVector(s, &st->installed_dab);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "minp", &s));
      ds = DecodeVector(s, &st->min_primary);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "home", &s));
      ds = DecodeInts(s, &st->item_home_shard);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "free", &s));
      ds = DecodeVector(s, &st->shard_free_at);
      if (!ds.ok()) return LineError(rec.line_number, ds.message());
    } else if (rec.tag == "iq") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(rec, {"t", "i", "q", "s"}));
      long long i = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "i", &i));
      if (i < 0 || i >= st->num_items) {
        return LineError(rec.line_number, "ckpt 'iq' item out of range");
      }
      if (st->item_queries.empty()) {
        st->item_queries.resize(static_cast<size_t>(st->num_items));
        st->item_shards.resize(static_cast<size_t>(st->num_items));
      }
      auto qit = rec.strings.find("q");
      if (qit != rec.strings.end()) {
        Status ds = DecodeInts(qit->second,
                               &st->item_queries[static_cast<size_t>(i)]);
        if (!ds.ok()) return LineError(rec.line_number, ds.message());
      }
      auto sit = rec.strings.find("s");
      if (sit != rec.strings.end()) {
        Status ds =
            DecodeInts(sit->second, &st->item_shards[static_cast<size_t>(i)]);
        if (!ds.ok()) return LineError(rec.line_number, ds.message());
      }
    } else if (rec.tag == "ev") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "time", "k", "item", "val", "tid", "wait", "seq"}));
      CheckpointEvent e;
      long long v = 0;
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "time", &e.time));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "k", &v));
      e.type = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "item", &v));
      e.item = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "val", &e.value));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "tid", &v));
      e.trace_id = static_cast<uint64_t>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "wait", &e.wait));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "seq", &v));
      e.seq = v;
      st->events.push_back(e);
    } else if (rec.tag == "src") {
      POLYDAB_RETURN_NOT_OK(
          CheckKeys(rec, {"t", "i", "cu", "ce", "nh", "lc", "cte"}));
      CheckpointSource s;
      long long v = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "i", &v));
      s.source = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "cu", &s.crashed_until));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "ce", &v));
      s.crash_event = static_cast<uint64_t>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "nh", &s.next_heartbeat));
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "lc", &s.last_contact));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "cte", &v));
      s.contact_event = static_cast<uint64_t>(v);
      st->sources.push_back(s);
    } else if (rec.tag == "if") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "i", "ns", "ds", "dr", "de", "exp", "ee", "pl", "ps",
                "pv", "pe", "pr", "pa"}));
      CheckpointItemFault f;
      long long v = 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "i", &v));
      f.item = static_cast<int>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "ns", &v));
      f.next_seq = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "ds", &v));
      f.delivered_seq = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "dr", &v));
      f.drop_seq = v;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "de", &v));
      f.drop_eid = static_cast<uint64_t>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "exp", &v));
      f.expired = v != 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "ee", &v));
      f.expire_event = static_cast<uint64_t>(v);
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "pl", &v));
      f.pending_live = v != 0;
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "ps", &v));
      f.pending_seq = v;
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "pv", &f.pending_value));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "pe", &v));
      f.pending_emit_id = static_cast<uint64_t>(v);
      POLYDAB_RETURN_NOT_OK(GetNum(rec, "pr", &f.pending_next_retx));
      POLYDAB_RETURN_NOT_OK(GetInt(rec, "pa", &v));
      f.pending_attempts = static_cast<int>(v);
      st->item_fault.push_back(f);
    } else if (rec.tag == "reg") {
      POLYDAB_RETURN_NOT_OK(CheckKeys(
          rec, {"t", "k", "name", "v", "count", "sum", "min", "max", "b"}));
      CheckpointInstrument ins;
      std::string kind;
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "k", &kind));
      if (kind != "c" && kind != "g" && kind != "h") {
        return LineError(rec.line_number,
                         "unknown instrument kind '" + kind + "'");
      }
      ins.kind = kind[0];
      POLYDAB_RETURN_NOT_OK(GetStr(rec, "name", &ins.name));
      if (ins.kind == 'c') {
        long long v = 0;
        POLYDAB_RETURN_NOT_OK(GetInt(rec, "v", &v));
        ins.count = v;
      } else if (ins.kind == 'g') {
        POLYDAB_RETURN_NOT_OK(GetNum(rec, "v", &ins.value));
      } else {
        long long v = 0;
        POLYDAB_RETURN_NOT_OK(GetInt(rec, "count", &v));
        ins.count = v;
        POLYDAB_RETURN_NOT_OK(GetNum(rec, "sum", &ins.sum));
        POLYDAB_RETURN_NOT_OK(GetTokDouble(rec, "min", &ins.raw_min));
        POLYDAB_RETURN_NOT_OK(GetTokDouble(rec, "max", &ins.raw_max));
        std::string b;
        POLYDAB_RETURN_NOT_OK(GetStr(rec, "b", &b));
        Status ds = DecodeBuckets(b, &ins.buckets);
        if (!ds.ok()) return LineError(rec.line_number, ds.message());
      }
      st->instruments.push_back(std::move(ins));
    } else {
      return LineError(rec.line_number,
                       "unknown ckpt record type '" + rec.tag + "'");
    }
  }
  if (nq != static_cast<long long>(st->queries.size())) {
    return Status::InvalidArgument(
        "checkpoint block is internally inconsistent: header says " +
        std::to_string(nq) + " query records, block has " +
        std::to_string(st->queries.size()));
  }
  if (np != static_cast<long long>(st->parts.size())) {
    return Status::InvalidArgument(
        "checkpoint block is internally inconsistent: header says " +
        std::to_string(np) + " part records, block has " +
        std::to_string(st->parts.size()));
  }
  if (nev != static_cast<long long>(st->events.size())) {
    return Status::InvalidArgument(
        "checkpoint block is internally inconsistent: header says " +
        std::to_string(nev) + " event records, block has " +
        std::to_string(st->events.size()));
  }
  if (st->item_queries.empty()) {
    st->item_queries.resize(static_cast<size_t>(st->num_items));
    st->item_shards.resize(static_cast<size_t>(st->num_items));
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const CheckpointState& state, const std::string& path) {
  const std::vector<std::string> lines = BuildBlockLines(state);
  const uint32_t digest = BlockDigest(lines);
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for appending");
  }
  bool ok = true;
  for (const std::string& line : lines) {
    ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size();
    ok = ok && std::fputc('\n', f) != EOF;
  }
  ok = ok && std::fprintf(f, "{\"t\":\"end\",\"digest\":%" PRIu32
                             ",\"n\":%zu}\n",
                          digest, lines.size()) > 0;
  ok = ok && std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status LoadLatestCheckpoint(const std::string& path, CheckpointState* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error on '" + path + "'");

  // Pass 1: split and syntax-parse every line, keeping raw bytes.
  std::vector<Rec> recs;
  size_t start = 0;
  int64_t line_number = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    const bool terminated = end != std::string::npos;
    if (!terminated) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!terminated) {
      return LineError(line_number,
                       "truncated record at end of file (no trailing "
                       "newline; partial write?)");
    }
    Rec rec;
    rec.line_number = line_number;
    Status parsed = obs::ParseFlatJsonLine(line, &rec.strings, &rec.numbers);
    if (!parsed.ok()) return LineError(line_number, parsed.message());
    auto tit = rec.strings.find("t");
    if (tit == rec.strings.end()) {
      return LineError(line_number, "ckpt record has no 't' type tag");
    }
    rec.tag = tit->second;
    rec.raw = std::move(line);
    recs.push_back(std::move(rec));
  }
  if (recs.empty()) {
    return Status::InvalidArgument("'" + path + "' is empty");
  }

  // Pass 2: segment into blocks. Every block is hdr .. end; only the last
  // block may be footer-less (a torn write we fall back across).
  struct Block {
    size_t begin = 0;  // hdr index in recs
    size_t footer = 0; // end index, valid when complete
    bool complete = false;
  };
  std::vector<Block> blocks;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].tag == "hdr") {
      blocks.push_back(Block{i, 0, false});
    } else if (recs[i].tag == "end") {
      if (blocks.empty() || blocks.back().complete) {
        return LineError(recs[i].line_number,
                         "ckpt digest footer without a block header");
      }
      blocks.back().footer = i;
      blocks.back().complete = true;
    } else if (blocks.empty() || blocks.back().complete) {
      return LineError(recs[i].line_number,
                       "ckpt record outside any block");
    }
  }
  const Block* chosen = nullptr;
  for (size_t b = blocks.size(); b > 0; --b) {
    if (blocks[b - 1].complete) {
      chosen = &blocks[b - 1];
      break;
    }
    if (b != blocks.size()) {
      return LineError(recs[blocks[b - 1].begin].line_number,
                       "ckpt block has no digest footer but is not the "
                       "last block in the file");
    }
  }
  if (chosen == nullptr) {
    return Status::InvalidArgument(
        "'" + path + "' has no complete checkpoint block (torn write with "
        "no earlier snapshot to fall back to)");
  }

  // Pass 3: verify the chosen block's digest footer.
  const Rec& footer = recs[chosen->footer];
  POLYDAB_RETURN_NOT_OK(CheckKeys(footer, {"t", "digest", "n"}));
  long long want_digest = 0, want_n = 0;
  POLYDAB_RETURN_NOT_OK(GetInt(footer, "digest", &want_digest));
  POLYDAB_RETURN_NOT_OK(GetInt(footer, "n", &want_n));
  std::vector<std::string> raw_lines;
  std::vector<const Rec*> block_recs;
  for (size_t i = chosen->begin; i < chosen->footer; ++i) {
    raw_lines.push_back(recs[i].raw);
    block_recs.push_back(&recs[i]);
  }
  if (want_n != static_cast<long long>(raw_lines.size())) {
    return LineError(footer.line_number,
                     "ckpt footer line count mismatch: footer says " +
                         std::to_string(want_n) + ", block has " +
                         std::to_string(raw_lines.size()));
  }
  const uint32_t have_digest = BlockDigest(raw_lines);
  if (static_cast<uint32_t>(want_digest) != have_digest) {
    return LineError(footer.line_number,
                     "ckpt digest mismatch: footer says " +
                         std::to_string(want_digest) +
                         ", block hashes to " + std::to_string(have_digest) +
                         " (corrupted snapshot)");
  }

  // Pass 4: strict field decode of the verified block.
  Status decoded = DecodeBlock(block_recs, out);
  if (!decoded.ok()) return decoded;
  return Status::OK();
}

std::string SummarizeCheckpoint(const CheckpointState& st) {
  size_t live = 0;
  for (const CheckpointQuery& q : st.queries) {
    if (q.alive) ++live;
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "format        %s\n", kCkptVersion);
  out += buf;
  std::snprintf(buf, sizeof(buf), "tick          %d (ticks_seen %d)\n",
                st.tick, st.ticks_seen);
  out += buf;
  std::snprintf(buf, sizeof(buf), "config_fp     %u\n", st.config_fp);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "queries       %zu live / %zu slots, %zu plan parts\n", live,
                st.queries.size(), st.parts.size());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "items         %d across %d sources, %d lanes\n",
                st.num_items, st.num_sources, st.num_shards);
  out += buf;
  std::snprintf(buf, sizeof(buf), "events queued %zu\n", st.events.size());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "trace         next_id %llu (checkpoint_end %llu)\n",
                static_cast<unsigned long long>(st.trace_next_id),
                static_cast<unsigned long long>(st.ckpt_end_id));
  out += buf;
  std::snprintf(buf, sizeof(buf), "fault mode    %s; churn index %s\n",
                st.fault_mode ? "on" : "off",
                st.dqi_built ? "built" : "absent");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "metrics       refreshes %lld recomputations %lld "
                "dab_changes %lld notifications %lld\n",
                static_cast<long long>(st.refreshes),
                static_cast<long long>(st.recomputations),
                static_cast<long long>(st.dab_change_messages),
                static_cast<long long>(st.user_notifications));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "fault metrics drops %lld retransmits %lld dups %lld "
                "leases %lld degraded_s %s\n",
                static_cast<long long>(st.fault_drops),
                static_cast<long long>(st.retransmits),
                static_cast<long long>(st.duplicates_suppressed),
                static_cast<long long>(st.lease_expiries),
                EncodeDouble(st.degraded_query_seconds).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "instruments   %zu; service state %zu bytes\n",
                st.instruments.size(), st.service_state.size());
  out += buf;
  return out;
}

namespace {

/// Diff helper: count every difference, print the first max_lines of them.
struct DiffSink {
  int count = 0;
  int max_lines = 0;
  std::string* out = nullptr;

  void Report(const std::string& path, const std::string& a,
              const std::string& b) {
    ++count;
    if (count <= max_lines) {
      *out += "  " + path + ": " + a + " vs " + b + "\n";
    }
  }
  void Int(const std::string& path, long long a, long long b) {
    if (a != b) Report(path, std::to_string(a), std::to_string(b));
  }
  void Dbl(const std::string& path, double a, double b) {
    // Bit-compare via the round-trip encoding so -0.0 vs 0.0 and NaN
    // payload changes show up.
    const std::string ea = EncodeDouble(a), eb = EncodeDouble(b);
    if (ea != eb) Report(path, ea, eb);
  }
  void Str(const std::string& path, const std::string& a,
           const std::string& b) {
    if (a != b) {
      Report(path, a.size() > 40 ? a.substr(0, 40) + "..." : a,
             b.size() > 40 ? b.substr(0, 40) + "..." : b);
    }
  }
};

}  // namespace

int DiffCheckpoints(const CheckpointState& a, const CheckpointState& b,
                    int max_lines, std::string* out) {
  DiffSink d;
  d.max_lines = max_lines;
  d.out = out;
  d.Int("tick", a.tick, b.tick);
  d.Int("ticks_seen", a.ticks_seen, b.ticks_seen);
  d.Int("config_fp", a.config_fp, b.config_fp);
  d.Int("items", a.num_items, b.num_items);
  d.Int("sources", a.num_sources, b.num_sources);
  d.Int("shards", a.num_shards, b.num_shards);
  d.Int("trace_next_id", static_cast<long long>(a.trace_next_id),
        static_cast<long long>(b.trace_next_id));
  d.Int("fault", a.fault_mode, b.fault_mode);
  d.Int("dqi", a.dqi_built, b.dqi_built);
  d.Int("updates_since_rebase", a.updates_since_rebase,
        b.updates_since_rebase);
  d.Int("metrics.refreshes", a.refreshes, b.refreshes);
  d.Int("metrics.recomputations", a.recomputations, b.recomputations);
  d.Int("metrics.dab_changes", a.dab_change_messages, b.dab_change_messages);
  d.Int("metrics.notifications", a.user_notifications, b.user_notifications);
  d.Int("metrics.solver_failures", a.solver_failures, b.solver_failures);
  d.Int("metrics.drops", a.fault_drops, b.fault_drops);
  d.Int("metrics.retransmits", a.retransmits, b.retransmits);
  d.Int("metrics.dups", a.duplicates_suppressed, b.duplicates_suppressed);
  d.Int("metrics.leases", a.lease_expiries, b.lease_expiries);
  d.Dbl("metrics.degraded_s", a.degraded_query_seconds,
        b.degraded_query_seconds);
  d.Str("delay_rng", a.delay_rng, b.delay_rng);
  d.Str("fault_rng", a.fault_rng, b.fault_rng);
  d.Str("service_state", a.service_state, b.service_state);

  d.Int("queries.size", static_cast<long long>(a.queries.size()),
        static_cast<long long>(b.queries.size()));
  const size_t nq = std::min(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < nq; ++i) {
    const std::string p = "q[" + std::to_string(i) + "].";
    d.Int(p + "id", a.queries[i].id, b.queries[i].id);
    d.Dbl(p + "qab", a.queries[i].qab, b.queries[i].qab);
    d.Str(p + "poly", a.queries[i].poly, b.queries[i].poly);
    d.Int(p + "alive", a.queries[i].alive, b.queries[i].alive);
    d.Dbl(p + "viol", a.queries[i].violated_time, b.queries[i].violated_time);
    d.Dbl(p + "lastv", a.queries[i].last_user_value,
          b.queries[i].last_user_value);
    d.Int(p + "shard", a.queries[i].shard, b.queries[i].shard);
    d.Dbl(p + "qval", a.queries[i].query_value, b.queries[i].query_value);
    d.Int(p + "degi", a.queries[i].degraded_items, b.queries[i].degraded_items);
  }
  d.Int("parts.size", static_cast<long long>(a.parts.size()),
        static_cast<long long>(b.parts.size()));
  const size_t np = std::min(a.parts.size(), b.parts.size());
  for (size_t i = 0; i < np; ++i) {
    const std::string p = "part[" + std::to_string(i) + "].";
    d.Str(p + "poly", a.parts[i].poly, b.parts[i].poly);
    d.Str(p + "pri", a.parts[i].primary, b.parts[i].primary);
    d.Str(p + "sec", a.parts[i].secondary, b.parts[i].secondary);
    d.Str(p + "anchor", a.parts[i].anchor, b.parts[i].anchor);
    d.Dbl(p + "rate", a.parts[i].recompute_rate, b.parts[i].recompute_rate);
  }
  d.Str("view", EncodeVector(a.view), EncodeVector(b.view));
  d.Str("source_value", EncodeVector(a.source_value),
        EncodeVector(b.source_value));
  d.Str("last_pushed", EncodeVector(a.last_pushed),
        EncodeVector(b.last_pushed));
  d.Str("installed_dab", EncodeVector(a.installed_dab),
        EncodeVector(b.installed_dab));
  d.Str("min_primary", EncodeVector(a.min_primary),
        EncodeVector(b.min_primary));
  d.Str("shard_free_at", EncodeVector(a.shard_free_at),
        EncodeVector(b.shard_free_at));
  d.Int("events.size", static_cast<long long>(a.events.size()),
        static_cast<long long>(b.events.size()));
  const size_t ne = std::min(a.events.size(), b.events.size());
  for (size_t i = 0; i < ne; ++i) {
    const std::string p = "ev[" + std::to_string(i) + "].";
    d.Dbl(p + "time", a.events[i].time, b.events[i].time);
    d.Int(p + "k", a.events[i].type, b.events[i].type);
    d.Int(p + "item", a.events[i].item, b.events[i].item);
    d.Dbl(p + "val", a.events[i].value, b.events[i].value);
    d.Int(p + "tid", static_cast<long long>(a.events[i].trace_id),
          static_cast<long long>(b.events[i].trace_id));
  }
  d.Int("instruments.size", static_cast<long long>(a.instruments.size()),
        static_cast<long long>(b.instruments.size()));
  const size_t ni = std::min(a.instruments.size(), b.instruments.size());
  for (size_t i = 0; i < ni; ++i) {
    const CheckpointInstrument& x = a.instruments[i];
    const CheckpointInstrument& y = b.instruments[i];
    const std::string p = "reg[" + x.name + "].";
    d.Str(p + "name", x.name, y.name);
    d.Int(p + "count", x.count, y.count);
    d.Dbl(p + "value", x.value, y.value);
    d.Dbl(p + "sum", x.sum, y.sum);
    d.Str(p + "buckets", EncodeBuckets(x.buckets), EncodeBuckets(y.buckets));
  }
  if (d.count > d.max_lines) {
    *out += "  ... " + std::to_string(d.count - d.max_lines) +
            " more difference(s)\n";
  }
  return d.count;
}

}  // namespace polydab::recovery
