#ifndef POLYDAB_RECOVERY_RECOVERY_H_
#define POLYDAB_RECOVERY_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "recovery/checkpoint.h"
#include "recovery/wal.h"

/// \file recovery.h
/// Coordinator crash recovery (docs/RECOVERY.md). The simulation engine
/// is deterministic given a seed, so durability needs exactly three
/// artifacts: a periodic checkpoint of the coordinator's full mutable
/// state (recovery/checkpoint.h), a write-ahead log of the refresh rows
/// consumed after the last checkpoint (recovery/wal.h), and a restart
/// path that reloads the snapshot, replays the logged rows through the
/// unmodified tick loop, and resumes — bit-identical to a run that never
/// crashed. RecoveryConfig is the engine-facing knob bundle; the
/// polydab_experiment CLI maps ckpt-out= / ckpt-interval-s= / wal-out= /
/// coord-crash-at= / restart-from= onto it.

namespace polydab::recovery {

/// Engine-facing recovery configuration, attached to SimConfig::recovery.
/// Plain data; the engine never owns the pointers.
struct RecoveryConfig {
  /// Checkpoint file to append snapshot blocks to ("" = no checkpoints).
  std::string checkpoint_path;
  /// WAL file to append consumed-tick rows to ("" = no WAL).
  std::string wal_path;
  /// Simulated-time checkpoint cadence in seconds (= ticks; the engine's
  /// tick is one second). A snapshot block is appended at the end of
  /// every tick that is a positive multiple of this interval.
  int interval_s = 60;
  /// Crash injector: terminate the coordinator at the *top* of this tick,
  /// before the tick's source row is consumed (0 = never). The engine
  /// emits a coord_crash trace event, appends a crash marker to the WAL,
  /// sets `crashed` below and returns its partial metrics.
  int crash_at_tick = 0;

  /// Restart inputs (both null for a fresh run): the snapshot to resume
  /// from and the parsed WAL whose rows past the snapshot tick are
  /// replayed. Loaded by the caller (polydab_ckpt / polydab_experiment);
  /// the engine only validates consistency.
  const CheckpointState* restart = nullptr;
  const std::vector<WalRecord>* wal = nullptr;

  /// --- Outputs (written by the engine) ---
  /// True when the run terminated via the crash injector rather than by
  /// exhausting its tick source.
  bool crashed = false;
  /// Trace id of the emitted coord_crash event (0 when untraced).
  uint64_t crash_event_id = 0;

  bool restarting() const { return restart != nullptr; }

  /// Reject inconsistent knob combinations with a diagnostic naming the
  /// field: negative/zero cadence, crash injection without both a
  /// checkpoint file and a WAL (nothing to restart from), crash injection
  /// combined with restart in one invocation, and restart without a WAL.
  Status Validate() const;
};

}  // namespace polydab::recovery

#endif  // POLYDAB_RECOVERY_RECOVERY_H_
