#ifndef POLYDAB_RECOVERY_CODEC_H_
#define POLYDAB_RECOVERY_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "poly/polynomial.h"

/// \file codec.h
/// Token codecs shared by the checkpoint and WAL formats. The on-disk
/// records are the flat one-line JSON objects json_util.h already reads
/// and writes; anything vector- or polynomial-shaped is packed into a
/// single JSON *string* field as space/punctuation-separated tokens, so
/// the line format stays flat. Every codec is an exact inverse of its
/// encoder: doubles go through shortest-round-trip rendering (JsonNumber)
/// plus explicit "inf"/"-inf"/"nan" tokens (installed DABs are +inf for
/// unplanned items, histogram extrema are ±inf while empty), so a decode
/// → encode round trip is byte-identical and a restore is bit-identical.

namespace polydab::recovery {

/// Shortest-round-trip rendering of one double, extended with "inf",
/// "-inf" and "nan" tokens that JsonNumber cannot produce.
std::string EncodeDouble(double v);
/// Inverse of EncodeDouble. InvalidArgument on anything else.
Status DecodeDouble(const std::string& tok, double* out);

/// Space-separated EncodeDouble tokens ("" for an empty vector).
std::string EncodeVector(const Vector& v);
Status DecodeVector(const std::string& s, Vector* out);

/// Space-separated decimal integers ("" for an empty vector).
std::string EncodeInts(const std::vector<int>& v);
Status DecodeInts(const std::string& s, std::vector<int>* out);

/// Canonical polynomial encoding, term-exact: terms joined by '|', each
/// term "<coef>@<var>:<pow>[,<var>:<pow>...]" ("<coef>@" for the constant
/// term). A polynomial is already canonical (sorted, merged) in memory,
/// so encode(decode(s)) == s and decode(encode(p)) reproduces p's exact
/// coefficient bits. The zero polynomial encodes as "".
std::string EncodePolynomial(const Polynomial& p);
Status DecodePolynomial(const std::string& s, Polynomial* out);

}  // namespace polydab::recovery

#endif  // POLYDAB_RECOVERY_CODEC_H_
