#include "recovery/recovery.h"

namespace polydab::recovery {

Status RecoveryConfig::Validate() const {
  if (interval_s <= 0) {
    return Status::InvalidArgument(
        "recovery.interval_s must be positive, got " +
        std::to_string(interval_s));
  }
  if (crash_at_tick < 0) {
    return Status::InvalidArgument(
        "recovery.crash_at_tick must be >= 0, got " +
        std::to_string(crash_at_tick));
  }
  if (crash_at_tick > 0 &&
      (checkpoint_path.empty() || wal_path.empty())) {
    return Status::InvalidArgument(
        "recovery.crash_at_tick requires both a checkpoint file and a WAL "
        "(nothing to restart from otherwise)");
  }
  if (crash_at_tick > 0 && restarting()) {
    return Status::InvalidArgument(
        "recovery.crash_at_tick cannot be combined with a restart in one "
        "invocation");
  }
  if (restarting() && wal == nullptr) {
    return Status::InvalidArgument(
        "recovery restart requires the parsed WAL");
  }
  return Status::OK();
}

}  // namespace polydab::recovery
