#ifndef POLYDAB_RECOVERY_WAL_H_
#define POLYDAB_RECOVERY_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

/// \file wal.h
/// Write-ahead log of everything the coordinator consumed after the last
/// checkpoint (docs/RECOVERY.md). The engine is deterministic given its
/// inputs, so the only record replay strictly needs is the refresh row a
/// tick consumed ("row", written *before* the tick is processed); ack and
/// churn records are append-only audit entries for polydab_ckpt — replay
/// regenerates both deterministically and ignores them. A "crash" marker
/// records where the injector terminated the run, so the restart knows
/// which tick to stop replaying at and which trace id the coord_crash
/// event carried. The file is JSONL, format tag polydab.wal.v1, strictly
/// parsed with line-numbered diagnostics, and accumulates across
/// invocations: a restarted run appends its newly consumed ticks to the
/// same file, so checkpoint + WAL stay a self-sufficient pair.

namespace polydab::recovery {

/// One parsed WAL record. Fields are populated per kind; unused fields
/// keep their zero values.
struct WalRecord {
  enum class Kind { kHeader, kRow, kAck, kChurn, kCrash };
  Kind kind = Kind::kHeader;
  int tick = 0;           ///< kRow / kChurn / kCrash
  Vector values;          ///< kRow: the full source row for the tick
  double time = 0.0;      ///< kAck: simulated send time
  int item = -1;          ///< kAck
  int64_t seq = 0;        ///< kAck: acknowledged sequence number
  std::string op;         ///< kChurn: register | modify | deregister
  int query_id = 0;       ///< kChurn
  uint64_t event_id = 0;  ///< kCrash: trace id of the coord_crash event
  uint64_t cause = 0;     ///< kCrash: latest checkpoint_end id (0 if none)
};

/// Append an opened-for-append WAL stream's header line. Call once per
/// engine invocation; the loader accepts headers anywhere in the file.
void AppendWalHeader(std::FILE* f);
void AppendWalRow(std::FILE* f, int tick, const Vector& values);
void AppendWalAck(std::FILE* f, double time, int item, int64_t seq);
void AppendWalChurn(std::FILE* f, int tick, const std::string& op,
                    int query_id);
void AppendWalCrash(std::FILE* f, int tick, uint64_t event_id,
                    uint64_t cause);

/// Parse a whole WAL file. Strict: unknown record kinds, unknown keys,
/// missing fields, version skew and a truncated final line are all
/// InvalidArgument naming the line number.
Status LoadWal(const std::string& path, std::vector<WalRecord>* out);

/// The last crash marker in \p records, or nullptr when the log ends
/// without one (the run is still going, or finished cleanly).
const WalRecord* LastCrashMarker(const std::vector<WalRecord>& records);

}  // namespace polydab::recovery

#endif  // POLYDAB_RECOVERY_WAL_H_
