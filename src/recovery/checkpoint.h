#ifndef POLYDAB_RECOVERY_CHECKPOINT_H_
#define POLYDAB_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

/// \file checkpoint.h
/// Durable coordinator snapshots (docs/RECOVERY.md). A checkpoint block
/// is the coordinator's *entire* mutable state at the end of one tick —
/// query slots and installed plans, primary/secondary DAB assignments and
/// anchors, the in-flight event heap, the reliability protocol's
/// seq/ack/retransmit/lease arrays, the two persistent RNG streams, every
/// registry instrument, and the service driver's opaque state — rendered
/// as strictly parsed JSON lines (format tag polydab.ckpt.v1) in the same
/// json_util dialect as traces and run reports. Blocks are appended to an
/// accumulating file; the loader takes the last *complete* block (header
/// through digest footer), so a crash mid-write simply falls back to the
/// previous snapshot. Corruption is never repaired silently: version
/// skew, unknown keys, missing fields, a digest mismatch and a truncated
/// final line are all InvalidArgument naming the line number.

namespace polydab::recovery {

/// One query slot (live or dead — dead slots keep their index).
struct CheckpointQuery {
  int id = 0;
  double qab = 0.0;
  std::string poly;       ///< EncodePolynomial
  bool alive = true;
  int reg_tick = 0;
  int dereg_tick = -1;    ///< -1 = never deregistered (INT_MAX in-engine)
  double violated_time = 0.0;
  double last_user_value = 0.0;
  int shard = 0;          ///< coordinator lane
  double query_value = 0.0;  ///< incremental evaluator's delta-chain value
  int degraded_items = 0;    ///< fault mode: items degrading this query
  uint64_t degrade_event = 0;
};

/// One installed plan part of one query slot.
struct CheckpointPart {
  int slot = 0;
  int part = 0;
  std::string poly;  ///< the sub-polynomial, EncodePolynomial
  double pqab = 0.0; ///< the part's share of the query accuracy bound
  std::vector<int> vars;
  std::string primary;    ///< EncodeVector, aligned with vars
  std::string secondary;  ///< EncodeVector, aligned with vars
  double recompute_rate = 0.0;
  bool single_dab = false;
  bool never_stale = false;
  std::string anchor;     ///< EncodeVector: item values the DABs anchor at
};

/// One queued simulator event, verbatim (the heap array is serialized in
/// storage order and restored as-is — the replacement heap's layout is
/// specified, so the bytes are deterministic).
struct CheckpointEvent {
  double time = 0.0;
  int type = 0;
  int item = -1;
  double value = 0.0;
  uint64_t trace_id = 0;
  double wait = 0.0;
  int64_t seq = 0;
};

/// Per-source reliability protocol state (fault mode only).
struct CheckpointSource {
  int source = 0;
  double crashed_until = 0.0;
  uint64_t crash_event = 0;
  double next_heartbeat = 0.0;
  double last_contact = 0.0;
  uint64_t contact_event = 0;
};

/// Per-item reliability protocol state (fault mode only).
struct CheckpointItemFault {
  int item = 0;
  int64_t next_seq = 1;
  int64_t delivered_seq = 0;
  int64_t drop_seq = 0;
  uint64_t drop_eid = 0;
  bool expired = false;
  uint64_t expire_event = 0;
  // The pending (unacked) refresh, if any.
  bool pending_live = false;
  int64_t pending_seq = 0;
  double pending_value = 0.0;
  uint64_t pending_emit_id = 0;
  double pending_next_retx = 0.0;
  int pending_attempts = 0;
};

/// One registry instrument. kind is 'c' (counter), 'g' (gauge) or 'h'
/// (histogram); only the matching fields are meaningful. Instrument
/// *presence* matters as much as values — the run report prints every
/// registered name — so even zero-valued instruments are recorded.
struct CheckpointInstrument {
  char kind = 'c';
  std::string name;
  int64_t count = 0;                              ///< 'c' value / 'h' count
  double value = 0.0;                             ///< 'g'
  double sum = 0.0;                               ///< 'h'
  double raw_min = 0.0;                           ///< 'h' (+inf while empty)
  double raw_max = 0.0;                           ///< 'h' (-inf while empty)
  std::vector<std::pair<int, int64_t>> buckets;   ///< 'h' non-empty buckets
};

/// A full snapshot. Plain data; the engine builds/applies it, this module
/// only moves it to and from disk.
struct CheckpointState {
  int tick = 0;         ///< snapshot taken at the end of this tick
  int ticks_seen = 0;
  uint32_t config_fp = 0;  ///< FNV-1a of SimConfig::Describe()
  int num_items = 0;
  int num_sources = 0;
  int num_shards = 0;
  uint64_t trace_next_id = 0;  ///< first event id after the snapshot
  uint64_t ckpt_end_id = 0;    ///< id of this snapshot's checkpoint_end
  bool fault_mode = false;
  bool dqi_built = false;      ///< dynamic query index existed (churn ran)
  int64_t updates_since_rebase = 0;  ///< incremental evaluator drift clock

  // SimMetrics, field for field.
  int64_t refreshes = 0;
  int64_t recomputations = 0;
  int64_t dab_change_messages = 0;
  int64_t user_notifications = 0;
  int64_t solver_failures = 0;
  int64_t fault_drops = 0;
  int64_t retransmits = 0;
  int64_t duplicates_suppressed = 0;
  int64_t lease_expiries = 0;
  double degraded_query_seconds = 0.0;

  std::vector<CheckpointQuery> queries;
  std::vector<CheckpointPart> parts;

  // Item-indexed coordinator vectors.
  Vector view;
  Vector source_value;
  Vector last_pushed;
  Vector installed_dab;   ///< +inf for unconstrained items
  Vector min_primary;     ///< +inf for unconstrained items
  std::vector<int> item_home_shard;
  std::vector<std::vector<int>> item_queries;  ///< query slots per item
  std::vector<std::vector<int>> item_shards;   ///< lanes per item
  Vector shard_free_at;

  std::vector<CheckpointEvent> events;         ///< heap array, verbatim
  std::vector<CheckpointSource> sources;       ///< fault mode only
  std::vector<CheckpointItemFault> item_fault; ///< fault mode only
  std::vector<CheckpointInstrument> instruments;

  std::string delay_rng;  ///< mt19937_64 stream state, space-separated
  std::string fault_rng;
  std::string service_state;  ///< ServiceHooks::SnapshotState, opaque
};

/// Append one snapshot block (header .. digest footer) to \p path,
/// creating the file if needed. Flushes before returning so the block is
/// durable against a subsequent simulated crash.
Status WriteCheckpoint(const CheckpointState& state, const std::string& path);

/// Load the last complete block of \p path. Incomplete trailing blocks
/// (in-progress or torn writes, i.e. a header without its matching
/// footer) are tolerated only at the end of the file; everything else is
/// a named, line-numbered error.
Status LoadLatestCheckpoint(const std::string& path, CheckpointState* out);

/// Human-oriented multi-line summary of one snapshot (polydab_ckpt).
std::string SummarizeCheckpoint(const CheckpointState& state);

/// Compare two snapshots field by field; appends one "  path: a vs b"
/// line per difference to \p out (capped at \p max_lines) and returns
/// the total number of differences.
int DiffCheckpoints(const CheckpointState& a, const CheckpointState& b,
                    int max_lines, std::string* out);

}  // namespace polydab::recovery

#endif  // POLYDAB_RECOVERY_CHECKPOINT_H_
