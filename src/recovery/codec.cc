#include "recovery/codec.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/json_util.h"

namespace polydab::recovery {

namespace {

/// Split \p s on \p sep, keeping empty pieces out (the encoders never
/// emit doubled separators, so an empty piece is a format error flagged
/// by the per-token decoders).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

Status DecodeLong(const std::string& tok, long long* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end == tok.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer token '" + tok + "'");
  }
  *out = v;
  return Status::OK();
}

}  // namespace

std::string EncodeDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return obs::JsonNumber(v);
}

Status DecodeDouble(const std::string& tok, double* out) {
  if (tok == "inf") {
    *out = std::numeric_limits<double>::infinity();
    return Status::OK();
  }
  if (tok == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return Status::OK();
  }
  if (tok == "nan") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return Status::OK();
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("bad number token '" + tok + "'");
  }
  *out = v;
  return Status::OK();
}

std::string EncodeVector(const Vector& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ' ';
    out += EncodeDouble(v[i]);
  }
  return out;
}

Status DecodeVector(const std::string& s, Vector* out) {
  out->clear();
  if (s.empty()) return Status::OK();
  for (const std::string& tok : Split(s, ' ')) {
    double v = 0.0;
    POLYDAB_RETURN_NOT_OK(DecodeDouble(tok, &v));
    out->push_back(v);
  }
  return Status::OK();
}

std::string EncodeInts(const std::vector<int>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(v[i]);
  }
  return out;
}

Status DecodeInts(const std::string& s, std::vector<int>* out) {
  out->clear();
  if (s.empty()) return Status::OK();
  for (const std::string& tok : Split(s, ' ')) {
    long long v = 0;
    POLYDAB_RETURN_NOT_OK(DecodeLong(tok, &v));
    out->push_back(static_cast<int>(v));
  }
  return Status::OK();
}

std::string EncodePolynomial(const Polynomial& p) {
  std::string out;
  for (size_t t = 0; t < p.terms().size(); ++t) {
    const Monomial& m = p.terms()[t];
    if (t > 0) out += '|';
    out += EncodeDouble(m.coef());
    out += '@';
    for (size_t i = 0; i < m.powers().size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(m.powers()[i].first);
      out += ':';
      out += std::to_string(m.powers()[i].second);
    }
  }
  return out;
}

Status DecodePolynomial(const std::string& s, Polynomial* out) {
  if (s.empty()) {
    *out = Polynomial();
    return Status::OK();
  }
  std::vector<Monomial> terms;
  for (const std::string& term : Split(s, '|')) {
    const size_t at = term.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("polynomial term '" + term +
                                     "' has no '@'");
    }
    double coef = 0.0;
    POLYDAB_RETURN_NOT_OK(DecodeDouble(term.substr(0, at), &coef));
    std::vector<std::pair<VarId, int>> powers;
    const std::string rest = term.substr(at + 1);
    if (!rest.empty()) {
      for (const std::string& vp : Split(rest, ',')) {
        const size_t colon = vp.find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument("polynomial power '" + vp +
                                         "' has no ':'");
        }
        long long var = 0, pow = 0;
        POLYDAB_RETURN_NOT_OK(DecodeLong(vp.substr(0, colon), &var));
        POLYDAB_RETURN_NOT_OK(DecodeLong(vp.substr(colon + 1), &pow));
        powers.emplace_back(static_cast<VarId>(var), static_cast<int>(pow));
      }
    }
    terms.emplace_back(coef, std::move(powers));
  }
  *out = Polynomial(std::move(terms));
  return Status::OK();
}

}  // namespace polydab::recovery
