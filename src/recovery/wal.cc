#include "recovery/wal.h"

#include <map>
#include <set>
#include <utility>

#include "obs/json_util.h"
#include "recovery/codec.h"

namespace polydab::recovery {

namespace {

constexpr char kWalVersion[] = "polydab.wal.v1";

Status LineError(int64_t line_number, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 ": " + msg);
}

/// Reject any key outside \p allowed (strictness mirror of the trace
/// parser: a WAL written by a newer build must not be half-understood).
Status CheckKeys(const std::map<std::string, std::string>& strings,
                 const std::map<std::string, double>& numbers,
                 const std::set<std::string>& allowed,
                 const std::string& kind) {
  for (const auto& [k, v] : strings) {
    if (allowed.count(k) == 0) {
      return Status::InvalidArgument("unknown key '" + k + "' in wal '" +
                                     kind + "' record");
    }
  }
  for (const auto& [k, v] : numbers) {
    if (allowed.count(k) == 0) {
      return Status::InvalidArgument("unknown key '" + k + "' in wal '" +
                                     kind + "' record");
    }
  }
  return Status::OK();
}

Status RequireNumber(const std::map<std::string, double>& numbers,
                     const std::string& key, const std::string& kind,
                     double* out) {
  auto it = numbers.find(key);
  if (it == numbers.end()) {
    return Status::InvalidArgument("wal '" + kind +
                                   "' record missing key '" + key + "'");
  }
  *out = it->second;
  return Status::OK();
}

Status ParseWalLine(const std::string& line, WalRecord* out) {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  POLYDAB_RETURN_NOT_OK(obs::ParseFlatJsonLine(line, &strings, &numbers));
  auto wit = strings.find("w");
  if (wit == strings.end()) {
    return Status::InvalidArgument("wal record has no 'w' kind tag");
  }
  const std::string& kind = wit->second;
  if (kind == "hdr") {
    POLYDAB_RETURN_NOT_OK(CheckKeys(strings, numbers, {"w", "v"}, kind));
    auto vit = strings.find("v");
    if (vit == strings.end()) {
      return Status::InvalidArgument("wal 'hdr' record missing key 'v'");
    }
    if (vit->second != kWalVersion) {
      return Status::InvalidArgument("wal version skew: file says '" +
                                     vit->second + "', this build reads '" +
                                     kWalVersion + "'");
    }
    out->kind = WalRecord::Kind::kHeader;
    return Status::OK();
  }
  if (kind == "row") {
    POLYDAB_RETURN_NOT_OK(
        CheckKeys(strings, numbers, {"w", "tick", "vals"}, kind));
    double tick = 0.0;
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "tick", kind, &tick));
    auto vit = strings.find("vals");
    if (vit == strings.end()) {
      return Status::InvalidArgument("wal 'row' record missing key 'vals'");
    }
    out->kind = WalRecord::Kind::kRow;
    out->tick = static_cast<int>(tick);
    return DecodeVector(vit->second, &out->values);
  }
  if (kind == "ack") {
    POLYDAB_RETURN_NOT_OK(
        CheckKeys(strings, numbers, {"w", "time", "item", "seq"}, kind));
    double time = 0.0, item = 0.0, seq = 0.0;
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "time", kind, &time));
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "item", kind, &item));
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "seq", kind, &seq));
    out->kind = WalRecord::Kind::kAck;
    out->time = time;
    out->item = static_cast<int>(item);
    out->seq = static_cast<int64_t>(seq);
    return Status::OK();
  }
  if (kind == "churn") {
    POLYDAB_RETURN_NOT_OK(
        CheckKeys(strings, numbers, {"w", "tick", "op", "id"}, kind));
    double tick = 0.0, id = 0.0;
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "tick", kind, &tick));
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "id", kind, &id));
    auto oit = strings.find("op");
    if (oit == strings.end()) {
      return Status::InvalidArgument("wal 'churn' record missing key 'op'");
    }
    out->kind = WalRecord::Kind::kChurn;
    out->tick = static_cast<int>(tick);
    out->op = oit->second;
    out->query_id = static_cast<int>(id);
    return Status::OK();
  }
  if (kind == "crash") {
    POLYDAB_RETURN_NOT_OK(
        CheckKeys(strings, numbers, {"w", "tick", "eid", "cause"}, kind));
    double tick = 0.0, eid = 0.0, cause = 0.0;
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "tick", kind, &tick));
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "eid", kind, &eid));
    POLYDAB_RETURN_NOT_OK(RequireNumber(numbers, "cause", kind, &cause));
    out->kind = WalRecord::Kind::kCrash;
    out->tick = static_cast<int>(tick);
    out->event_id = static_cast<uint64_t>(eid);
    out->cause = static_cast<uint64_t>(cause);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown wal record kind '" + kind + "'");
}

}  // namespace

void AppendWalHeader(std::FILE* f) {
  std::fprintf(f, "{\"w\":\"hdr\",\"v\":\"%s\"}\n", kWalVersion);
}

void AppendWalRow(std::FILE* f, int tick, const Vector& values) {
  const std::string vals = EncodeVector(values);
  std::fprintf(f, "{\"w\":\"row\",\"tick\":%d,\"vals\":\"%s\"}\n", tick,
               vals.c_str());
}

void AppendWalAck(std::FILE* f, double time, int item, int64_t seq) {
  std::fprintf(f, "{\"w\":\"ack\",\"time\":%s,\"item\":%d,\"seq\":%lld}\n",
               obs::JsonNumber(time).c_str(), item,
               static_cast<long long>(seq));
}

void AppendWalChurn(std::FILE* f, int tick, const std::string& op,
                    int query_id) {
  std::fprintf(f, "{\"w\":\"churn\",\"tick\":%d,\"op\":\"%s\",\"id\":%d}\n",
               tick, op.c_str(), query_id);
}

void AppendWalCrash(std::FILE* f, int tick, uint64_t event_id,
                    uint64_t cause) {
  std::fprintf(f, "{\"w\":\"crash\",\"tick\":%d,\"eid\":%llu,\"cause\":%llu}\n",
               tick, static_cast<unsigned long long>(event_id),
               static_cast<unsigned long long>(cause));
}

Status LoadWal(const std::string& path, std::vector<WalRecord>* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error on '" + path + "'");

  bool saw_header = false;
  size_t start = 0;
  int64_t line_number = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    const bool terminated = end != std::string::npos;
    if (!terminated) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!terminated) {
      return LineError(line_number,
                       "truncated record at end of file (no trailing "
                       "newline; partial write?)");
    }
    WalRecord rec;
    Status parsed = ParseWalLine(line, &rec);
    if (!parsed.ok()) return LineError(line_number, parsed.message());
    if (rec.kind == WalRecord::Kind::kHeader) {
      saw_header = true;
      continue;  // headers carry no state; one per engine invocation
    }
    if (!saw_header) {
      return LineError(line_number, "wal record before any 'hdr' record");
    }
    out->push_back(std::move(rec));
  }
  if (!saw_header) {
    return Status::InvalidArgument("'" + path +
                                   "': not a polydab WAL (no 'hdr' record)");
  }
  return Status::OK();
}

const WalRecord* LastCrashMarker(const std::vector<WalRecord>& records) {
  for (size_t i = records.size(); i > 0; --i) {
    if (records[i - 1].kind == WalRecord::Kind::kCrash) return &records[i - 1];
  }
  return nullptr;
}

}  // namespace polydab::recovery
