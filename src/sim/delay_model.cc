#include "sim/delay_model.h"

#include <cmath>
#include <cstdio>

namespace polydab::sim {

namespace {

Status BadField(const char* field, double value, const char* want) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "DelayConfig.%s = %g: %s", field, value,
                want);
  return Status::InvalidArgument(buf);
}

}  // namespace

Status DelayConfig::Validate() const {
  struct MeanField {
    const char* name;
    double value;
  };
  const MeanField means[] = {{"node_node_mean", node_node_mean},
                             {"check_mean", check_mean},
                             {"push_mean", push_mean}};
  for (const MeanField& m : means) {
    if (!(std::isfinite(m.value) && m.value >= 0.0)) {
      return BadField(m.name, m.value, "want a finite delay >= 0 seconds");
    }
    if (!zero_delay && m.value <= 0.0) {
      return BadField(m.name, m.value,
                      "want > 0 (Pareto sampling needs a positive mean; "
                      "use zero_delay for the idealized setting)");
    }
  }
  if (!(std::isfinite(recompute_cpu_s) && recompute_cpu_s >= 0.0)) {
    return BadField("recompute_cpu_s", recompute_cpu_s,
                    "want a finite CPU time >= 0 seconds");
  }
  if (!std::isfinite(pareto_shape) ||
      (!zero_delay && pareto_shape <= 1.0)) {
    return BadField("pareto_shape", pareto_shape,
                    "want a finite shape > 1 (the Pareto mean diverges "
                    "at shape <= 1)");
  }
  return Status::OK();
}

}  // namespace polydab::sim
