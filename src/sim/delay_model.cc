#include "sim/delay_model.h"

// DelayModel is header-only today; this translation unit anchors the
// library target and keeps a stable home for future out-of-line logic.
