#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <ostream>
#include <queue>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "core/multi_query.h"
#include "gp/solve_engine.h"
#include "core/query_index.h"
#include "core/validator.h"
#include "obs/json_util.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"
#include "recovery/recovery.h"
#include "recovery/wal.h"
#include "rt/lane_pool.h"

#include "common/logging.h"

namespace polydab::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class EventType {
  kRefresh,
  kDabChange,
  kAckArrive,   // fault mode: coordinator ack reaching the source
  kHeartbeat,   // fault mode: source liveness signal reaching C
};

struct Event {
  double time;
  EventType type;
  int item;      // kHeartbeat: the source id
  double value;  // refresh: item value; dab-change: new filter width
  // Causal-trace bookkeeping, 0 when tracing is off: the id of the
  // refresh_emitted / dab_change_sent event this message corresponds to,
  // and the total coordinator-queue wait accumulated across deferrals.
  uint64_t trace_id = 0;
  double wait = 0.0;
  // Fault mode: the refresh/ack sequence number; 0 = unsequenced
  // (fault-free runs, DAB changes).
  int64_t seq = 0;

  bool operator>(const Event& other) const { return time > other.time; }
};

/// Fault mode: a source's latest unacked refresh of one item, kept for
/// timeout retransmission. Replaced wholesale when a newer value pushes
/// (the newer seq supersedes the older one).
/// In-flight message queue. Drop-in for the former
/// `std::priority_queue<Event, std::vector<Event>, std::greater<Event>>`:
/// the standard specifies priority_queue::push as push_back + push_heap
/// and ::pop as pop_heap + pop_back, so this explicit heap is
/// bit-identical to it — while exposing the underlying array, which the
/// crash-recovery checkpoint (src/recovery/) serializes verbatim and
/// restores without re-heapifying (docs/RECOVERY.md).
struct EventQueue {
  std::vector<Event> c;  // valid heap under std::greater<Event>

  bool empty() const { return c.empty(); }
  size_t size() const { return c.size(); }
  const Event& top() const { return c.front(); }
  void push(Event e) {
    c.push_back(e);
    std::push_heap(c.begin(), c.end(), std::greater<Event>{});
  }
  void pop() {
    std::pop_heap(c.begin(), c.end(), std::greater<Event>{});
    c.pop_back();
  }
};

struct PendingRefresh {
  int64_t seq = 0;
  double value = 0.0;
  uint64_t emit_id = 0;   // latest emission (refresh_emitted / retransmit)
  double next_retx = 0.0;
  int attempts = 0;
  bool live = false;
};

/// Whole simulation state; method-free aggregation kept local to this TU.
struct State {
  std::vector<std::vector<int>> item_queries;  // item -> query indices

  // Source side.
  Vector source_value;    // true current value per item
  Vector last_pushed;     // value at last push per item
  Vector installed_dab;   // filter width currently active at the source

  // Coordinator side. Each query's plan consists of one or two
  // independently maintained parts (two under Half and Half, §III-B.2);
  // anchors[q][p] holds the item values the part's DABs were computed at.
  Vector view;  // C's item values
  std::vector<core::QueryPlan> plans;
  std::vector<std::vector<Vector>> anchors;
  Vector min_primary;  // EQI merge target per item

  // Coordinator lanes (sharded coordinator; one lane == the historical
  // serial resource). Queries are pinned to lanes; an item's *home* lane
  // is the lane of the first query referencing it (-1: unused item), and
  // item_shards lists every lane with a query referencing the item, so
  // cross-lane EQI merges know which lanes a barrier must join.
  std::vector<int> query_shard;               // query index -> lane
  std::vector<int> item_home_shard;           // item -> home lane
  std::vector<std::vector<int>> item_shards;  // item -> sorted unique lanes
  std::vector<double> shard_free_at;          // per-lane busy-until time

  // Bookkeeping.
  std::vector<double> violated_time;  // per query: fidelity loss
  EventQueue events;
};

/// Minimum primary DAB for one item across every part of every plan that
/// references it (the EQI merge of §IV).
double ItemMinPrimary(const State& st, int item) {
  double m = kInf;
  for (int qi : st.item_queries[static_cast<size_t>(item)]) {
    for (const core::PlanPart& part : st.plans[static_cast<size_t>(qi)].parts) {
      const int idx = part.dabs.IndexOf(static_cast<VarId>(item));
      if (idx >= 0) {
        m = std::min(m, part.dabs.primary[static_cast<size_t>(idx)]);
      }
    }
  }
  return m;
}

/// Cached `sim.*` instrument pointers, resolved once per run. All null
/// when no registry is attached, so every recording site is one branch.
/// The coordinator counters are incremented at exactly the sites that
/// bump the corresponding SimMetrics fields, keeping the registry and the
/// returned metrics a single source of truth (asserted in sim_test.cc).
struct SimInstruments {
  obs::Counter* refreshes = nullptr;
  obs::Counter* recomputations = nullptr;
  obs::Counter* dab_change_messages = nullptr;
  obs::Counter* user_notifications = nullptr;
  obs::Counter* solver_failures = nullptr;
  obs::Counter* cause_secondary_escape = nullptr;
  obs::Counter* cause_single_dab_staleness = nullptr;
  obs::Counter* cause_aao_periodic = nullptr;
  obs::Counter* shard_barriers = nullptr;
  // `sim.fault.*`, mirroring the SimMetrics fault counters. Registered
  // only when the run's FaultConfig is active so fault-free runs keep
  // their historical registry contents (and run-report bytes) unchanged.
  obs::Counter* fault_drops = nullptr;
  obs::Counter* retransmits = nullptr;
  obs::Counter* duplicates_suppressed = nullptr;
  obs::Counter* lease_expiries = nullptr;
  obs::Counter* degraded_query_seconds = nullptr;
  obs::Histogram* message_delay = nullptr;
  obs::Histogram* queue_wait = nullptr;
  obs::Histogram* shard_dispatch_wait = nullptr;
  obs::Histogram* tick_refreshes = nullptr;
  obs::Histogram* tick_recomputations = nullptr;

  SimInstruments(obs::MetricRegistry* reg, bool fault_active) {
    if (reg == nullptr) return;
    if (fault_active) {
      fault_drops = reg->GetCounter("sim.fault.drops");
      retransmits = reg->GetCounter("sim.fault.retransmits");
      duplicates_suppressed =
          reg->GetCounter("sim.fault.duplicates_suppressed");
      lease_expiries = reg->GetCounter("sim.fault.lease_expiries");
      degraded_query_seconds =
          reg->GetCounter("sim.fault.degraded_query_seconds");
    }
    refreshes = reg->GetCounter("sim.coordinator.refreshes");
    recomputations = reg->GetCounter("sim.coordinator.recomputations");
    dab_change_messages =
        reg->GetCounter("sim.coordinator.dab_change_messages");
    user_notifications =
        reg->GetCounter("sim.coordinator.user_notifications");
    solver_failures = reg->GetCounter("sim.coordinator.solver_failures");
    cause_secondary_escape =
        reg->GetCounter("sim.recompute_cause.secondary_escape");
    cause_single_dab_staleness =
        reg->GetCounter("sim.recompute_cause.single_dab_staleness");
    cause_aao_periodic = reg->GetCounter("sim.recompute_cause.aao_periodic");
    shard_barriers = reg->GetCounter("sim.coordinator.shard_barriers");
    message_delay = reg->GetHistogram("sim.net.message_delay_seconds");
    queue_wait = reg->GetHistogram("sim.coordinator.queue_wait_seconds");
    shard_dispatch_wait =
        reg->GetHistogram("sim.coordinator.shard_dispatch_wait_seconds");
    tick_refreshes = reg->GetHistogram("sim.tick.refreshes");
    tick_recomputations = reg->GetHistogram("sim.tick.recomputations");
  }
};

/// ServiceOps implementation handed to the churn driver: thin forwarding
/// shims over lambdas local to the run (they capture the whole engine
/// state), so the churn transaction logic stays next to the event loop it
/// mutates.
class EngineOps final : public ServiceOps {
 public:
  const Vector* view = nullptr;
  const Vector* rates = nullptr;
  std::function<Result<core::QueryPlan>(const PolynomialQuery&)> trial;
  std::function<Status(const PolynomialQuery&, core::QueryPlan, double, int)>
      register_fn;
  std::function<Status(int, double, core::QueryPlan)> modify_fn;
  std::function<Status(int)> deregister_fn;
  std::function<void(int, double, double, int)> reject_fn;

  const Vector& View() const override { return *view; }
  const Vector& Rates() const override { return *rates; }
  Result<core::QueryPlan> TrialPlan(const PolynomialQuery& query) override {
    return trial(query);
  }
  Status Register(const PolynomialQuery& query, core::QueryPlan plan,
                  double admission_estimate, int degrade_attempts) override {
    return register_fn(query, std::move(plan), admission_estimate,
                       degrade_attempts);
  }
  Status Modify(int query_id, double new_qab, core::QueryPlan plan) override {
    return modify_fn(query_id, new_qab, std::move(plan));
  }
  Status Deregister(int query_id) override { return deregister_fn(query_id); }
  void AdmissionReject(int query_id, double estimate, double budget,
                       int reason) override {
    reject_fn(query_id, estimate, budget, reason);
  }
};

}  // namespace

const char* Name(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kEqiComponents:
      return "eqi_components";
    case ShardPolicy::kQueryHash:
      return "query_hash";
  }
  return "?";
}

const char* Name(PlanMaintenance maintenance) {
  switch (maintenance) {
    case PlanMaintenance::kIncremental:
      return "incremental";
    case PlanMaintenance::kRebuild:
      return "rebuild";
  }
  return "?";
}

std::string SimConfig::Describe() const {
  char buf[416];
  std::snprintf(
      buf, sizeof(buf),
      "%s sources=%d seed=%llu coord_shards=%d shard_policy=%s "
      "aao_period_s=%g fidelity_stride=%d "
      "violation_tol=%g paranoid_validation=%s zero_delay=%s "
      "node_node_mean=%g check_mean=%g push_mean=%g recompute_cpu_s=%g",
      planner.Describe().c_str(), num_sources,
      static_cast<unsigned long long>(seed), coord_shards, Name(shard_policy),
      aao_period_s, fidelity_stride,
      violation_tol, paranoid_validation ? "true" : "false",
      delays.zero_delay ? "true" : "false", delays.node_node_mean,
      delays.check_mean, delays.push_mean, delays.recompute_cpu_s);
  std::string out = buf;
  if (fault.active()) {
    out += " fault{";
    out += fault.Describe();
    if (fault.protocol_only) out += " protocol_only";
    out += "}";
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const SimConfig& config) {
  return os << config.Describe();
}

Result<SimMetrics> RunSimulation(const std::vector<PolynomialQuery>& queries,
                                 const workload::TraceSet& traces,
                                 const Vector& rates,
                                 const SimConfig& config) {
  // Thin adapter over the streaming entry point. The two checks here keep
  // the historical error precedence (empty query set before short trace);
  // the streaming body can only discover a short stream after consuming
  // it.
  if (queries.empty()) {
    return Status::InvalidArgument("no queries to simulate");
  }
  if (traces.num_ticks < 2) {
    return Status::InvalidArgument("trace too short");
  }
  workload::TraceSetTickSource source(&traces);
  return RunSimulation(queries, source, rates, config);
}

Result<SimMetrics> RunSimulation(
    const std::vector<PolynomialQuery>& initial_queries,
    workload::TickSource& source, const Vector& rates,
    const SimConfig& config) {
  if (initial_queries.empty()) {
    return Status::InvalidArgument("no queries to simulate");
  }
  // Runtime churn appends to (and edits QABs inside) this local copy;
  // every reference below reads it, so a run without churn sees exactly
  // the caller's set.
  std::vector<PolynomialQuery> queries = initial_queries;
  const size_t n_items = source.num_items();
  if (rates.size() < n_items) {
    return Status::InvalidArgument("rates vector smaller than item count");
  }
  if (config.coord_shards < 1) {
    return Status::InvalidArgument("coord_shards must be >= 1");
  }
  if (config.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  if (config.threads > 0 && config.rt_queue_cap < 1) {
    return Status::InvalidArgument("rt_queue_cap must be >= 1");
  }
  if (config.threads > 0 && config.rt_fail_at < 0) {
    return Status::InvalidArgument("rt_fail_at must be >= 0");
  }
  if (config.solve_batch < 0) {
    return Status::InvalidArgument("solve_batch must be >= 0");
  }
  if (config.solve_cache < 0) {
    return Status::InvalidArgument("solve_cache must be >= 0");
  }
  if (config.solve_batch > 0 && config.threads > 0) {
    // The real-thread runtime already runs its own two-pass dispatch; a
    // second batching pass would fight it over the stale-set replay.
    return Status::InvalidArgument(
        "solve_batch requires the single-threaded engine (threads=0)");
  }
  // A malformed delay or fault config would otherwise surface as a NaN
  // epidemic or a hard CHECK abort deep inside a run; reject it up front
  // with a diagnostic naming the field.
  POLYDAB_RETURN_NOT_OK(config.delays.Validate());
  POLYDAB_RETURN_NOT_OK(config.fault.Validate());
  const int num_shards = config.coord_shards;
  const bool sharded = num_shards > 1;
  const bool aao_mode = config.aao_period_s > 0.0;
  if (config.service != nullptr) {
    // Churn rewrites the query set mid-run; the AAO joint solve and the
    // fault-protocol side tables both assume a fixed set. Keeping the
    // combinations out keeps both features' byte-identity oracles intact.
    if (aao_mode) {
      return Status::InvalidArgument(
          "service churn cannot be combined with AAO-periodic mode");
    }
    if (config.fault.active()) {
      return Status::InvalidArgument(
          "service churn cannot be combined with fault injection");
    }
  }
  if (aao_mode) {
    for (const PolynomialQuery& q : queries) {
      if (!q.IsPositiveCoefficient()) {
        return Status::InvalidArgument(
            "AAO-periodic mode requires positive-coefficient queries");
      }
    }
  }
  if (config.series != nullptr) {
    if (config.threads > 0) {
      // The recorder folds events in raw emission order; under the
      // real-thread runtime that order is nondeterministic until the
      // canonical re-sort, which runs after the fact.
      return Status::InvalidArgument(
          "series recording requires the single-threaded engine "
          "(threads=0)");
    }
    // The recorder folds the event stream, so it is meaningless without
    // one; and a replay-mode (derive_samples) recorder re-derives its
    // sample grid from events instead of taking the engine's feed.
    if (config.trace == nullptr) {
      return Status::InvalidArgument(
          "series recording requires a trace sink");
    }
    if (config.trace_node != -1) {
      return Status::InvalidArgument(
          "series recording is single-coordinator only");
    }
    if (config.series->config().derive_samples) {
      return Status::InvalidArgument(
          "series recorder is configured for replay (derive_samples); "
          "engine runs feed samples directly");
    }
    if (config.series->finalized()) {
      return Status::InvalidArgument("series recorder already finalized");
    }
  }
  // Crash-recovery layer (src/recovery/, docs/RECOVERY.md). Restart
  // correctness rests on re-running the tick loop with identical inputs,
  // so engine modes that would need extra non-checkpointed state — series
  // fold offsets, the solve engine's batch/LRU contents, the AAO joint
  // solution, the rt fault-injection dispatch counter — are rejected
  // outright rather than half-supported.
  recovery::RecoveryConfig* const rec = config.recovery;
  if (rec != nullptr) {
    POLYDAB_RETURN_NOT_OK(rec->Validate());
    if (config.series != nullptr) {
      return Status::InvalidArgument(
          "crash recovery is incompatible with series recording (the "
          "recorder's window fold is not checkpointed)");
    }
    if (config.solve_batch > 0 || config.solve_cache > 0) {
      return Status::InvalidArgument(
          "crash recovery is incompatible with the batched/memoizing solve "
          "engine (solve_batch/solve_cache); its cache is not checkpointed");
    }
    if (config.aao_period_s > 0.0) {
      return Status::InvalidArgument(
          "crash recovery is incompatible with AAO mode (the joint "
          "allocation is not checkpointed)");
    }
    if (config.threads > 0 && config.rt_fail_at > 0) {
      return Status::InvalidArgument(
          "crash recovery is incompatible with rt_fail_at fault injection "
          "(the dispatch counter is not checkpointed)");
    }
  }
  const bool rec_restart = rec != nullptr && rec->restarting();
  const recovery::CheckpointState* const ckpt =
      rec_restart ? rec->restart : nullptr;
  const bool rec_ckpt = rec != nullptr && !rec->checkpoint_path.empty();

  Rng master(config.seed);
  DelayModel delays(config.delays, master.Fork());
  // The fault layer owns a second forked stream: injection decisions and
  // protocol-message delays never perturb the main delay draws, so a
  // zero-probability (protocol_only) chaos run keeps the data path's
  // timings, and an inactive config takes no fault branch at all.
  FaultModel faults(config.fault, master.Fork());
  const bool fault_mode = config.fault.active();

  // Recovery: the config fingerprint sealed into every checkpoint block;
  // a restart refuses a snapshot taken under a different engine config.
  // The recovery knobs themselves are absent from Describe(), so a
  // crashed run and its restart — which differ only in those knobs —
  // fingerprint identically, as intended: they are control inputs, not
  // state-bearing configuration.
  const std::string config_desc = config.Describe();
  const uint32_t config_fp =
      Fnv1a32(config_desc.data(), config_desc.size());
  struct FileCloser {
    void operator()(std::FILE* f) const { std::fclose(f); }
  };
  std::unique_ptr<std::FILE, FileCloser> wal_file;
  if (rec != nullptr && !rec->wal_path.empty()) {
    wal_file.reset(std::fopen(rec->wal_path.c_str(), "a"));
    if (wal_file == nullptr) {
      return Status::InvalidArgument("cannot open WAL '" + rec->wal_path +
                                     "' for appending");
    }
    recovery::AppendWalHeader(wal_file.get());
  }
  // Replay bookkeeping, filled by the restore block below. Declared this
  // early because the ack/churn lambdas capture them: audit records are
  // only appended once the replay span is exhausted (`replay_done`), so a
  // restart never re-writes rows the WAL already holds.
  uint64_t last_ckpt_end_id = 0;
  const recovery::WalRecord* crash_marker = nullptr;
  std::vector<const recovery::WalRecord*> replay_rows;
  bool replay_done = true;
  size_t replay_idx = 0;

  // Telemetry: cache instruments once and propagate the registry into the
  // planner (and through it the GP solver) so one SimConfig::registry
  // assignment instruments the whole stack.
  SimInstruments ins(config.registry, fault_mode);
  core::PlannerConfig planner_cfg = config.planner;
  if (planner_cfg.registry == nullptr) {
    planner_cfg.registry = config.registry;
  }
  if (planner_cfg.dual.solver.registry == nullptr) {
    planner_cfg.dual.solver.registry = planner_cfg.registry;
  }

  // Batched/memoizing solve server (gp/solve_engine.h, docs/SOLVER.md).
  // Attached through SolverOptions::engine, so every GP solve in the run
  // — per-part replans, plan-time solves, AAO joint solves, rt workers —
  // routes through the one shared engine; every result is bit-identical
  // to the direct path by construction. Declared before the lane pool so
  // it outlives the workers that hold a pointer to it.
  const bool engine_on = config.solve_batch > 0 || config.solve_cache > 0;
  gp::SolveEngine::Options engine_opt;
  engine_opt.cache_entries = config.solve_cache;
  engine_opt.registry = config.registry;
  gp::SolveEngine solve_engine(engine_opt);
  if (engine_on && planner_cfg.dual.solver.engine == nullptr) {
    planner_cfg.dual.solver.engine = &solve_engine;
  }

  // Causal event trace (obs/trace.h): propagated into the planner like
  // the registry. Every emission site below is one branch when off.
  obs::TraceSink* const trace = config.trace;
  const int32_t tnode = config.trace_node;
  if (planner_cfg.trace == nullptr) {
    planner_cfg.trace = trace;
    planner_cfg.trace_node = tnode;
  }
  // Which source pushes an item's refreshes; purely an attribution label.
  const int num_sources = std::max(1, config.num_sources);
  if (trace != nullptr) {
    trace->SetNow(0.0);
    trace->SetInfo("origin", "sim");
    trace->SetInfo("method", core::Name(planner_cfg.method));
    trace->SetInfo("mu", obs::JsonNumber(planner_cfg.dual.mu));
    trace->SetInfo("sim_config", config.Describe());
    if (fault_mode) {
      // The offline verifier needs the item -> source mapping and the
      // protocol constants to re-derive crash windows, retransmit chains
      // and lease deadlines (obs/trace_check.cc).
      trace->SetInfo("fault_config", config.fault.Describe());
      trace->SetInfo("num_sources", std::to_string(num_sources));
      trace->SetInfo("fault_retx_timeout_s",
                     obs::JsonNumber(config.fault.retx_timeout_s));
      trace->SetInfo("fault_heartbeat_s",
                     obs::JsonNumber(config.fault.heartbeat_s));
      trace->SetInfo("fault_lease_s", obs::JsonNumber(config.fault.lease_s));
    }
  }
  // Windowed series telemetry (obs/timeseries.h): install the recorder
  // as the sink's observer before any emission so window 0 sees the t=0
  // initial installs, and stamp the metadata the checker's alerting mode
  // needs to replay the series from the events alone.
  if (config.series != nullptr) {
    trace->SetInfo("series_window_s",
                   std::to_string(config.series->config().window_ticks));
    const std::vector<obs::SloRule>& slo_rules = config.series->config().rules;
    if (!slo_rules.empty()) {
      trace->SetInfo("slo_rules", obs::CanonicalSloRules(slo_rules));
    }
    if (config.series->config().breakdown) {
      trace->SetInfo("series_breakdown", "1");
    }
    config.series->SetInitialQueries(static_cast<int64_t>(queries.size()));
    config.series->SetAlertSink(trace);
    trace->SetObserver(config.series);
  }

  State st;

  // Real-thread lane runtime (src/rt/, docs/CONCURRENCY.md). The pool is
  // declared after `st` and after `solve_jobs` so its destructor joins
  // every worker before anything a job closure references is destroyed,
  // however the run exits. Each refresh service runs in two passes when
  // threaded: pass 1 dispatches the stale parts' GP re-solves to the
  // workers' SPSC rings, pass 2 is the unchanged serial loop consuming
  // the results in oracle order.
  struct SolveJob {
    Result<QueryDabs> result{Status::Internal("rt: job not yet run")};
    int worker = 0;
    uint64_t epoch = 0;
  };
  std::deque<SolveJob> solve_jobs;  // deque: workers hold entry pointers
  size_t next_solve_job = 0;
  int64_t solve_jobs_dispatched = 0;
  const bool threaded = config.threads > 0;
  // Batched serial engine (solve_batch > 0): pass 1 collects the stale
  // parts and re-solves them through core::ReplanParts; pass 2 is the
  // unchanged serial loop consuming `batch_results` in oracle order.
  const bool batched = config.solve_batch > 0;
  std::vector<const core::PlanPart*> batch_parts;
  std::vector<Result<QueryDabs>> batch_results;
  size_t next_batch_result = 0;
  rt::LanePool pool;
  if (threaded) {
    rt::LanePool::Options rt_opt;
    rt_opt.workers = config.threads;
    rt_opt.queue_capacity = config.rt_queue_cap;
    POLYDAB_RETURN_NOT_OK(pool.Start(rt_opt));
    if (trace != nullptr) {
      // Stripped again by canonicalization (obs/trace_canon.h), so the
      // canonical trace's info block matches the threads = 0 oracle's.
      trace->SetInfo("rt_threads", std::to_string(config.threads));
      trace->SetInfo("rt_queue_cap", std::to_string(config.rt_queue_cap));
    }
  }

  // Restart: rebuild the full slot vector — the initial queries plus any
  // churn-registered slots — from the snapshot before any structure keyed
  // by query index is built. The caller must hand the same initial set;
  // only the prefix ids are checkable (churn may have modified bodies).
  if (rec_restart) {
    if (ckpt->config_fp != config_fp) {
      return Status::InvalidArgument(
          "restart: checkpoint was taken under a different engine config "
          "(fingerprint mismatch)");
    }
    if (static_cast<size_t>(ckpt->num_items) != n_items) {
      return Status::InvalidArgument(
          "restart: checkpoint item count " +
          std::to_string(ckpt->num_items) + " != trace set width " +
          std::to_string(n_items));
    }
    if (ckpt->num_sources != num_sources) {
      return Status::InvalidArgument(
          "restart: checkpoint source count mismatch");
    }
    if (ckpt->num_shards != num_shards) {
      return Status::InvalidArgument(
          "restart: checkpoint shard count mismatch");
    }
    if (ckpt->fault_mode != fault_mode) {
      return Status::InvalidArgument(
          "restart: checkpoint fault-mode flag mismatch");
    }
    if (ckpt->queries.size() < queries.size()) {
      return Status::InvalidArgument(
          "restart: checkpoint has fewer query slots than the initial "
          "workload");
    }
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (ckpt->queries[qi].id != queries[qi].id) {
        return Status::InvalidArgument(
            "restart: initial query slot " + std::to_string(qi) +
            " id mismatch (checkpoint " +
            std::to_string(ckpt->queries[qi].id) + ", workload " +
            std::to_string(queries[qi].id) + ")");
      }
    }
    std::vector<PolynomialQuery> restored;
    restored.reserve(ckpt->queries.size());
    for (const recovery::CheckpointQuery& cq : ckpt->queries) {
      PolynomialQuery q;
      q.id = cq.id;
      q.qab = cq.qab;
      Status ps = recovery::DecodePolynomial(cq.poly, &q.p);
      if (!ps.ok()) {
        return Status::InvalidArgument(
            "restart: bad query polynomial in checkpoint: " + ps.message());
      }
      restored.push_back(std::move(q));
    }
    queries = std::move(restored);
  }

  if (!rec_restart) {
    st.item_queries.resize(n_items);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (VarId v : queries[qi].p.Variables()) {
        if (static_cast<size_t>(v) >= n_items) {
          return Status::InvalidArgument(
              "query references item beyond trace set");
        }
        st.item_queries[static_cast<size_t>(v)].push_back(
            static_cast<int>(qi));
      }
    }

    // Lane partition. With a single lane every query lands on lane 0 and
    // the event loop below reduces to the historical serial coordinator
    // (bit-identically: same iteration order, same RNG draw order, same
    // floating-point accumulation sequence).
    {
      core::QueryIndex qindex(queries, n_items);
      st.query_shard = config.shard_policy == ShardPolicy::kQueryHash
                           ? qindex.ShardByQueryId(num_shards)
                           : qindex.ShardByComponent(num_shards);
    }
    st.item_home_shard.assign(n_items, -1);
    st.item_shards.resize(n_items);
    for (size_t i = 0; i < n_items; ++i) {
      const auto& qs = st.item_queries[i];
      if (qs.empty()) continue;
      st.item_home_shard[i] = st.query_shard[static_cast<size_t>(qs[0])];
      auto& lanes = st.item_shards[i];
      for (int qi : qs) {
        lanes.push_back(st.query_shard[static_cast<size_t>(qi)]);
      }
      std::sort(lanes.begin(), lanes.end());
      lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
    }
  } else {
    // These structures evolve under churn (dead slots leave, modified
    // polynomials move items), so they are restored verbatim rather than
    // rebuilt from the slot vector.
    if (ckpt->item_queries.size() != n_items ||
        ckpt->item_home_shard.size() != n_items ||
        ckpt->item_shards.size() != n_items) {
      return Status::InvalidArgument(
          "restart: checkpoint item-table width mismatch");
    }
    st.item_queries = ckpt->item_queries;
    st.item_home_shard = ckpt->item_home_shard;
    st.item_shards = ckpt->item_shards;
    st.query_shard.resize(queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      st.query_shard[qi] = ckpt->queries[qi].shard;
    }
  }
  st.shard_free_at.assign(static_cast<size_t>(num_shards), 0.0);
  if (trace != nullptr && sharded) {
    trace->SetInfo("coord_shards", std::to_string(num_shards));
    trace->SetInfo("shard_policy", Name(config.shard_policy));
  }

  // Tick 0: the initial snapshot every party starts in agreement on. On
  // restart the tool has already positioned the source past every
  // consumed tick; the snapshot carries the three value vectors.
  Vector row;
  if (!rec_restart) {
    {
      auto first = source.Next(&row);
      if (!first.ok()) return first.status();
      if (!*first) return Status::InvalidArgument("trace too short");
    }
    st.source_value = row;
    st.last_pushed = st.source_value;
    st.view = st.source_value;
  } else {
    if (ckpt->source_value.size() != n_items ||
        ckpt->last_pushed.size() != n_items || ckpt->view.size() != n_items) {
      return Status::InvalidArgument(
          "restart: checkpoint value-vector width mismatch");
    }
    st.source_value = ckpt->source_value;
    st.last_pushed = ckpt->last_pushed;
    st.view = ckpt->view;
  }
  st.plans.resize(queries.size());
  st.anchors.resize(queries.size());
  st.violated_time.assign(queries.size(), 0.0);

  SimMetrics metrics;

  // --- Fault-mode protocol state (docs/ROBUSTNESS.md). Sized only when
  // the fault layer is active; every use below is behind `fault_mode`. ---
  std::vector<int64_t> next_seq;          // item -> next refresh seq (from 1)
  std::vector<PendingRefresh> pending;    // item -> latest unacked refresh
  std::vector<int64_t> delivered_seq;     // item -> highest seq delivered at C
  std::vector<double> crashed_until;      // source -> down until this time
  std::vector<uint64_t> crash_event;      // source -> trace id of the crash
  std::vector<double> next_heartbeat;     // source -> next heartbeat time
  std::vector<double> last_contact;       // source -> last contact seen at C
  std::vector<uint64_t> contact_event;    // source -> trace id of the contact
  std::vector<uint8_t> item_expired;      // item -> lease currently lapsed?
  std::vector<uint64_t> expire_event;     // item -> trace id of the expiry
  std::vector<int64_t> drop_seq;          // item -> max dropped data seq
  std::vector<uint64_t> drop_eid;         // item -> trace id of that drop
  std::vector<int> degraded_items;        // query -> # of its expired items
  std::vector<uint64_t> degrade_event;    // query -> trace id of the degrade
  std::vector<std::vector<int>> source_items;  // source -> its queried items
  if (fault_mode) {
    next_seq.assign(n_items, 1);
    pending.assign(n_items, PendingRefresh{});
    delivered_seq.assign(n_items, 0);
    drop_seq.assign(n_items, 0);
    drop_eid.assign(n_items, 0);
    item_expired.assign(n_items, 0);
    expire_event.assign(n_items, 0);
    const size_t ns = static_cast<size_t>(num_sources);
    crashed_until.assign(ns, 0.0);
    crash_event.assign(ns, 0);
    next_heartbeat.assign(ns, 0.0);  // first heartbeat fires at tick 1
    last_contact.assign(ns, 0.0);    // t=0 install counts as contact
    contact_event.assign(ns, 0);
    source_items.resize(ns);
    for (size_t i = 0; i < n_items; ++i) {
      if (!st.item_queries[i].empty()) {
        source_items[i % ns].push_back(static_cast<int>(i));
      }
    }
    degraded_items.assign(queries.size(), 0);
    degrade_event.assign(queries.size(), 0);
  }

  if (rec_restart) {
    // Counters and the fault-protocol tables resume from the snapshot.
    metrics.refreshes = ckpt->refreshes;
    metrics.recomputations = ckpt->recomputations;
    metrics.dab_change_messages = ckpt->dab_change_messages;
    metrics.user_notifications = ckpt->user_notifications;
    metrics.solver_failures = ckpt->solver_failures;
    metrics.fault_drops = ckpt->fault_drops;
    metrics.retransmits = ckpt->retransmits;
    metrics.duplicates_suppressed = ckpt->duplicates_suppressed;
    metrics.lease_expiries = ckpt->lease_expiries;
    metrics.degraded_query_seconds = ckpt->degraded_query_seconds;
    if (fault_mode) {
      if (ckpt->sources.size() != static_cast<size_t>(num_sources)) {
        return Status::InvalidArgument(
            "restart: checkpoint source-table size mismatch");
      }
      for (size_t s = 0; s < ckpt->sources.size(); ++s) {
        const recovery::CheckpointSource& cs = ckpt->sources[s];
        if (cs.source != static_cast<int>(s)) {
          return Status::InvalidArgument(
              "restart: checkpoint source records out of order");
        }
        crashed_until[s] = cs.crashed_until;
        crash_event[s] = cs.crash_event;
        next_heartbeat[s] = cs.next_heartbeat;
        last_contact[s] = cs.last_contact;
        contact_event[s] = cs.contact_event;
      }
      if (ckpt->item_fault.size() != n_items) {
        return Status::InvalidArgument(
            "restart: checkpoint item-fault table size mismatch");
      }
      for (size_t i = 0; i < ckpt->item_fault.size(); ++i) {
        const recovery::CheckpointItemFault& cf = ckpt->item_fault[i];
        if (cf.item != static_cast<int>(i)) {
          return Status::InvalidArgument(
              "restart: checkpoint item-fault records out of order");
        }
        next_seq[i] = cf.next_seq;
        delivered_seq[i] = cf.delivered_seq;
        drop_seq[i] = cf.drop_seq;
        drop_eid[i] = cf.drop_eid;
        item_expired[i] = cf.expired ? 1 : 0;
        expire_event[i] = cf.expire_event;
        pending[i].live = cf.pending_live;
        pending[i].seq = cf.pending_seq;
        pending[i].value = cf.pending_value;
        pending[i].emit_id = cf.pending_emit_id;
        pending[i].next_retx = cf.pending_next_retx;
        pending[i].attempts = cf.pending_attempts;
      }
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        degraded_items[qi] = ckpt->queries[qi].degraded_items;
        degrade_event[qi] = ckpt->queries[qi].degrade_event;
      }
    } else if (!ckpt->sources.empty() || !ckpt->item_fault.empty()) {
      return Status::InvalidArgument(
          "restart: checkpoint carries fault tables but the fault layer "
          "is inactive");
    }
  }

  // Contact from source `s` observed at the coordinator (a delivered or
  // suppressed refresh, or a heartbeat): refresh the lease and recover
  // any of the source's items whose lease had lapsed. A query leaves
  // degraded service once every one of its expired items recovered.
  auto record_contact = [&](int s, double t, uint64_t cid) {
    const size_t ss = static_cast<size_t>(s);
    last_contact[ss] = t;
    contact_event[ss] = cid;
    for (int item : source_items[ss]) {
      const size_t it = static_cast<size_t>(item);
      if (item_expired[it] == 0) continue;
      item_expired[it] = 0;
      expire_event[it] = 0;
      for (int qi : st.item_queries[it]) {
        const size_t q = static_cast<size_t>(qi);
        if (--degraded_items[q] == 0) {
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = t;
            e.kind = obs::TraceEventKind::kRecover;
            e.node = tnode;
            e.source = s;
            e.query = queries[q].id;
            e.cause = cid;
            trace->Emit(e);
          }
          degrade_event[q] = 0;
        }
      }
    }
  };

  // Send one data-refresh copy (klass 0: first copy, 1: retransmit)
  // through the fault layer. The first copy draws its delay from the main
  // stream — exactly the draws a fault-free run makes — so protocol_only
  // runs keep the data path's timings; retransmit copies and all
  // injected extras draw from the fault stream.
  auto send_data = [&](size_t item, double value, int64_t seq,
                       uint64_t emit_id, int klass, double now) {
    if (faults.DropMessage()) {
      ++metrics.fault_drops;
      if (ins.fault_drops != nullptr) ins.fault_drops->Inc();
      // Per-item send seqs are non-decreasing (pending holds only the
      // latest), so this drop is the item's newest outstanding loss.
      drop_seq[item] = seq;
      if (trace != nullptr) {
        obs::TraceEvent e;
        e.time = now;
        e.kind = obs::TraceEventKind::kFaultDrop;
        e.node = tnode;
        e.source = static_cast<int32_t>(item) % num_sources;
        e.item = static_cast<int32_t>(item);
        e.cause = emit_id;
        e.a = value;
        e.b = static_cast<double>(klass);
        e.flag = static_cast<int32_t>(seq);
        drop_eid[item] = trace->Emit(e);
      }
      return;
    }
    double delay = klass == 0 ? delays.Push() + delays.Network()
                              : faults.ProtocolDelay(config.delays);
    delay += faults.ExtraDelay();
    if (ins.message_delay != nullptr) ins.message_delay->Record(delay);
    if (klass == 0 && faults.DuplicateMessage()) {
      // The duplicate copy races the original on its own delay draw.
      const double dup_delay =
          faults.ProtocolDelay(config.delays) + faults.ExtraDelay();
      Event dup{now + dup_delay, EventType::kRefresh,
                static_cast<int>(item), value, emit_id, 0.0};
      dup.seq = seq;
      st.events.push(dup);
    }
    Event ev{now + delay, EventType::kRefresh, static_cast<int>(item),
             value, emit_id, 0.0};
    ev.seq = seq;
    st.events.push(ev);
  };

  // Coordinator acks delivered (or suppressed-duplicate) seq `seq` of
  // `item` back to its source; the ack itself can be dropped.
  auto send_ack = [&](int item, int64_t seq, double now, uint64_t cause_id) {
    uint64_t ack_id = 0;
    if (trace != nullptr) {
      obs::TraceEvent e;
      e.time = now;
      e.kind = obs::TraceEventKind::kAck;
      e.node = tnode;
      e.item = item;
      e.cause = cause_id;
      e.flag = static_cast<int32_t>(seq);
      ack_id = trace->Emit(e);
    }
    // Audit record only: restart replay regenerates acks deterministically
    // from the rows, so the loader never feeds these back.
    if (wal_file != nullptr && replay_done) {
      recovery::AppendWalAck(wal_file.get(), now, item, seq);
    }
    if (faults.DropMessage()) {
      ++metrics.fault_drops;
      if (ins.fault_drops != nullptr) ins.fault_drops->Inc();
      if (trace != nullptr) {
        obs::TraceEvent e;
        e.time = now;
        e.kind = obs::TraceEventKind::kFaultDrop;
        e.node = tnode;
        e.source = item % num_sources;
        e.item = item;
        e.cause = ack_id;
        e.b = 2.0;  // message class: ack
        e.flag = static_cast<int32_t>(seq);
        trace->Emit(e);
      }
      return;
    }
    Event ack{now + faults.ProtocolDelay(config.delays) + faults.ExtraDelay(),
              EventType::kAckArrive, item, 0.0, ack_id, 0.0};
    ack.seq = seq;
    st.events.push(ack);
  };

  auto anchor_part = [&](size_t qi, size_t pi) {
    const core::PlanPart& part = st.plans[qi].parts[pi];
    Vector& anchor = st.anchors[qi][pi];
    anchor.resize(part.dabs.vars.size());
    for (size_t i = 0; i < part.dabs.vars.size(); ++i) {
      anchor[i] = st.view[static_cast<size_t>(part.dabs.vars[i])];
    }
  };

  // Initial planning (time zero; not counted as recomputation, and the
  // initial filters are installed synchronously). A restart skips this
  // wholesale — the t=0 solves, query infos, and install events all live
  // in the crashed run's trace — and reinstates plans, anchors, and the
  // per-item merge state bit-exactly from the snapshot instead.
  if (!rec_restart) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto plan = core::PlanQueryParts(queries[qi], st.view, rates,
                                       planner_cfg);
      if (!plan.ok()) {
        return Status::Internal("initial planning failed for query " +
                                std::to_string(queries[qi].id) + ": " +
                                plan.status().ToString());
      }
      st.plans[qi] = std::move(plan).value();
      st.anchors[qi].resize(st.plans[qi].parts.size());
      for (size_t pi = 0; pi < st.plans[qi].parts.size(); ++pi) {
        anchor_part(qi, pi);
      }
      if (config.paranoid_validation) {
        Status valid = core::ValidatePlan(st.plans[qi], st.view);
        if (!valid.ok()) {
          return Status::Internal("plan validation failed for query " +
                                  std::to_string(queries[qi].id) + ": " +
                                  valid.ToString());
        }
      }
    }
    st.min_primary.resize(n_items);
    st.installed_dab.resize(n_items);
    for (size_t i = 0; i < n_items; ++i) {
      st.min_primary[i] = ItemMinPrimary(st, static_cast<int>(i));
      st.installed_dab[i] = st.min_primary[i];
    }
    if (trace != nullptr) {
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        obs::TraceQueryInfo info;
        info.query = queries[qi].id;
        info.node = tnode;
        if (sharded) info.shard = st.query_shard[qi];
        info.qab = queries[qi].qab;
        for (VarId v : queries[qi].p.Variables()) {
          info.items.push_back(static_cast<int32_t>(v));
        }
        trace->AddQueryInfo(std::move(info));
      }
      // The initial plan's filters install synchronously at time zero
      // (cause 0); items no query uses keep an infinite width and never
      // refresh, so they are not recorded.
      for (size_t i = 0; i < n_items; ++i) {
        if (std::isinf(st.installed_dab[i])) continue;
        obs::TraceEvent e;
        e.kind = obs::TraceEventKind::kDabChangeInstalled;
        e.node = tnode;
        e.item = static_cast<int32_t>(i);
        e.a = st.installed_dab[i];
        trace->Emit(e);
      }
    }
  } else {
    for (const recovery::CheckpointPart& cp : ckpt->parts) {
      if (cp.slot < 0 || static_cast<size_t>(cp.slot) >= queries.size()) {
        return Status::InvalidArgument(
            "restart: checkpoint part references slot " +
            std::to_string(cp.slot) + " out of range");
      }
      const size_t slot = static_cast<size_t>(cp.slot);
      if (static_cast<size_t>(cp.part) != st.plans[slot].parts.size()) {
        return Status::InvalidArgument(
            "restart: checkpoint part records for slot " +
            std::to_string(cp.slot) + " out of order");
      }
      core::PlanPart part;
      part.subquery.id = queries[slot].id;
      part.subquery.qab = cp.pqab;
      Status ps = recovery::DecodePolynomial(cp.poly, &part.subquery.p);
      if (!ps.ok()) {
        return Status::InvalidArgument(
            "restart: bad part polynomial in checkpoint: " + ps.message());
      }
      part.dabs.vars.reserve(cp.vars.size());
      for (int v : cp.vars) {
        part.dabs.vars.push_back(static_cast<VarId>(v));
      }
      POLYDAB_RETURN_NOT_OK(
          recovery::DecodeVector(cp.primary, &part.dabs.primary));
      POLYDAB_RETURN_NOT_OK(
          recovery::DecodeVector(cp.secondary, &part.dabs.secondary));
      part.dabs.recompute_rate = cp.recompute_rate;
      part.dabs.single_dab = cp.single_dab;
      part.dabs.never_stale = cp.never_stale;
      if (part.dabs.primary.size() != part.dabs.vars.size() ||
          part.dabs.secondary.size() != part.dabs.vars.size()) {
        return Status::InvalidArgument(
            "restart: checkpoint part DAB widths disagree with its "
            "variable list");
      }
      Vector anchor;
      POLYDAB_RETURN_NOT_OK(recovery::DecodeVector(cp.anchor, &anchor));
      if (anchor.size() != part.dabs.vars.size()) {
        return Status::InvalidArgument(
            "restart: checkpoint part anchor width mismatch");
      }
      st.plans[slot].parts.push_back(std::move(part));
      st.anchors[slot].push_back(std::move(anchor));
    }
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      st.violated_time[qi] = ckpt->queries[qi].violated_time;
    }
    if (ckpt->min_primary.size() != n_items ||
        ckpt->installed_dab.size() != n_items) {
      return Status::InvalidArgument(
          "restart: checkpoint DAB-vector width mismatch");
    }
    st.min_primary = ckpt->min_primary;
    st.installed_dab = ckpt->installed_dab;
  }

  // Per-service scratch for the lane clocks: busy time accrued on each
  // lane while servicing one refresh, the pre-service lane clocks (the
  // shard-barrier time payload — the instant every involved lane has
  // drained its earlier work), and which lanes a barrier joined.
  std::vector<double> lane_busy(static_cast<size_t>(num_shards), 0.0);
  std::vector<double> pre_free(static_cast<size_t>(num_shards), 0.0);
  std::vector<uint8_t> barrier_lane(static_cast<size_t>(num_shards), 0);
  bool barrier_any = false;

  // After part (qi, pi) was replanned at time `now`, refresh the EQI merge
  // over its items and ship changed filters to the sources. `cause_id`
  // links each sent filter to the recompute_end / aao_solve trace event
  // that produced it (0 when tracing is off). When a merged item's queries
  // span several lanes, the merge reads plans owned by other lanes, so a
  // shard barrier joins them first; the AAO path passes
  // `emit_item_barriers` = false because it already synchronized every
  // lane through one global barrier.
  auto ship_dab_changes = [&](size_t qi, size_t pi, double now,
                              uint64_t cause_id, bool emit_item_barriers) {
    for (VarId v : st.plans[qi].parts[pi].dabs.vars) {
      const size_t item = static_cast<size_t>(v);
      const double fresh = ItemMinPrimary(st, static_cast<int>(item));
      if (std::fabs(fresh - st.min_primary[item]) >
          1e-9 * std::max(1.0, st.min_primary[item])) {
        const double old_width = st.min_primary[item];
        st.min_primary[item] = fresh;
        if (emit_item_barriers && sharded && st.item_shards[item].size() > 1) {
          double bt = now;
          for (int s : st.item_shards[item]) {
            bt = std::max(bt, pre_free[static_cast<size_t>(s)]);
            barrier_lane[static_cast<size_t>(s)] = 1;
          }
          barrier_any = true;
          if (ins.shard_barriers != nullptr) ins.shard_barriers->Inc();
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = now;
            e.kind = obs::TraceEventKind::kShardBarrier;
            e.node = tnode;
            e.item = static_cast<int32_t>(item);
            e.cause = cause_id;
            e.a = bt;
            e.b = static_cast<double>(st.item_shards[item].size());
            trace->Emit(e);
          }
        }
        ++metrics.dab_change_messages;
        if (ins.dab_change_messages != nullptr) ins.dab_change_messages->Inc();
        const double delay = delays.Check() + delays.Network();
        if (ins.message_delay != nullptr) ins.message_delay->Record(delay);
        uint64_t sent_id = 0;
        if (trace != nullptr) {
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kDabChangeSent;
          e.node = tnode;
          e.item = static_cast<int32_t>(item);
          e.query = queries[qi].id;
          e.part = static_cast<int32_t>(pi);
          if (sharded) e.shard = st.query_shard[qi];
          e.cause = cause_id;
          e.a = fresh;
          e.b = old_width;
          sent_id = trace->Emit(e);
        }
        st.events.push(Event{now + delay, EventType::kDabChange,
                             static_cast<int>(item), fresh, sent_id, 0.0});
      }
    }
  };

  // Incremental view-side query evaluation: the coordinator's values only
  // change on refresh arrivals, so the per-tick fidelity check patches
  // affected queries instead of re-evaluating everything.
  core::IncrementalEvaluator view_eval(queries, st.view);

  // §I-B: for each refresh, the coordinator checks which QABs would be
  // violated relative to the value last sent to the user, and pushes those
  // query results. last_user_value tracks what each user last saw.
  Vector last_user_value(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    last_user_value[qi] = view_eval.QueryValue(qi);
  }

  // --- Runtime churn state (docs/SERVICE.md). Slots are append-only:
  // a deregistered query keeps its index (q_alive flips off and its plan
  // empties), so every parallel per-query array stays index-stable. All
  // of this is inert — allocated but never branched on — when no service
  // driver is attached or the driver never issues an op, which is what
  // keeps a zero-churn run byte-identical to the historical path. ---
  std::vector<uint8_t> q_alive(queries.size(), 1);
  std::vector<int> q_reg_tick(queries.size(), 0);
  std::vector<int> q_dereg_tick(queries.size(),
                                std::numeric_limits<int>::max());
  std::unique_ptr<core::DynamicQueryIndex> dqi;
  int cur_tick = 0;     // logical clock for the churn transaction lambdas
  double cur_now = 0.0;

  // Lazily built at the first churn op; seeded with every live slot in
  // slot order so slot i of the dynamic index is query index i. Building
  // it on demand (rather than always) keeps the no-churn path free of the
  // extra construction work.
  auto ensure_dqi = [&]() {
    if (dqi != nullptr) return;
    dqi = std::make_unique<core::DynamicQueryIndex>(
        n_items, config.plan_maintenance == PlanMaintenance::kRebuild
                     ? core::DynamicQueryIndex::Maintenance::kRebuild
                     : core::DynamicQueryIndex::Maintenance::kIncremental);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      dqi->AddQuery(queries[qi].id, queries[qi].p.Variables());
    }
  };

  // Re-derive the lane partition and the per-item lane tables from the
  // dynamic index after a churn event. Dead slots get lane -1; they are
  // never referenced from item_queries, so the -1 is never read.
  auto refresh_partition = [&]() {
    st.query_shard = dqi->ShardAssignment(
        num_shards, config.shard_policy == ShardPolicy::kEqiComponents);
    st.item_home_shard.assign(n_items, -1);
    for (size_t i = 0; i < n_items; ++i) {
      auto& lanes = st.item_shards[i];
      lanes.clear();
      const auto& qs = st.item_queries[i];
      if (qs.empty()) continue;
      st.item_home_shard[i] = st.query_shard[static_cast<size_t>(qs[0])];
      for (int qi : qs) {
        lanes.push_back(st.query_shard[static_cast<size_t>(qi)]);
      }
      std::sort(lanes.begin(), lanes.end());
      lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
    }
  };

  // The plan_patch invariant: after every churn event, hash the complete
  // live plan state (id, lane, EQI component label, QAB) in ascending-id
  // order. The offline checker re-derives components and lanes from
  // scratch and recomputes the same digest, which is what holds
  // incremental maintenance to from-scratch-rebuild equality.
  auto emit_plan_patch = [&](uint64_t cause_id) {
    if (trace == nullptr) return;
    std::vector<size_t> live;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (q_alive[qi] != 0) live.push_back(qi);
    }
    std::sort(live.begin(), live.end(),
              [&](size_t a, size_t b) { return queries[a].id < queries[b].id; });
    uint32_t digest = kFnv1a32Seed;
    for (size_t qi : live) {
      digest = HashPlanRecord(digest, queries[qi].id, st.query_shard[qi],
                              dqi->ComponentMin(static_cast<int>(qi)),
                              queries[qi].qab);
    }
    obs::TraceEvent e;
    e.time = cur_now;
    e.kind = obs::TraceEventKind::kPlanPatch;
    e.node = tnode;
    e.cause = cause_id;
    e.a = static_cast<double>(dqi->num_active());
    e.b = static_cast<double>(dqi->num_components());
    e.flag = static_cast<int32_t>(digest);
    trace->Emit(e);
  };

  // Refresh the EQI merge over \p items after a churn op and ship changed
  // filters. Like ship_dab_changes, minus barrier emission: a churn op is
  // a control-plane transaction whose lane-time charge already covers the
  // repartition, and the merge here runs against the post-transaction
  // partition. An item whose last query departed is retired silently —
  // the coordinator drops the subscription in the same transaction, so no
  // filter message crosses the network.
  auto ship_churn_changes = [&](const std::vector<VarId>& items,
                                uint64_t cause_id, int q_id, int q_lane) {
    for (VarId v : items) {
      const size_t item = static_cast<size_t>(v);
      const double fresh = st.item_queries[item].empty()
                               ? kInf
                               : ItemMinPrimary(st, static_cast<int>(item));
      const double old_width = st.min_primary[item];
      const bool changed =
          std::isinf(fresh) != std::isinf(old_width) ||
          (!std::isinf(fresh) &&
           std::fabs(fresh - old_width) > 1e-9 * std::max(1.0, old_width));
      if (!changed) continue;
      st.min_primary[item] = fresh;
      if (std::isinf(fresh)) {
        st.installed_dab[item] = kInf;
        continue;
      }
      ++metrics.dab_change_messages;
      if (ins.dab_change_messages != nullptr) ins.dab_change_messages->Inc();
      const double delay = delays.Check() + delays.Network();
      if (ins.message_delay != nullptr) ins.message_delay->Record(delay);
      uint64_t sent_id = 0;
      if (trace != nullptr) {
        obs::TraceEvent e;
        e.time = cur_now;
        e.kind = obs::TraceEventKind::kDabChangeSent;
        e.node = tnode;
        e.item = static_cast<int32_t>(item);
        if (q_id >= 0) e.query = q_id;
        if (sharded && q_id >= 0) e.shard = q_lane;
        e.cause = cause_id;
        e.a = fresh;
        // A previously-retired item has an infinite merged width; record
        // 0 so the serialized trace stays finite.
        e.b = std::isinf(old_width) ? 0.0 : old_width;
        sent_id = trace->Emit(e);
      }
      st.events.push(Event{cur_now + delay, EventType::kDabChange,
                           static_cast<int>(item), fresh, sent_id, 0.0});
    }
  };

  auto find_live = [&](int query_id) -> int {
    for (size_t i = 0; i < queries.size(); ++i) {
      if (q_alive[i] != 0 && queries[i].id == query_id) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  auto do_register = [&](const PolynomialQuery& q, core::QueryPlan plan,
                         double estimate, int degrade_attempts) -> Status {
    for (VarId v : q.p.Variables()) {
      if (static_cast<size_t>(v) >= n_items) {
        return Status::InvalidArgument(
            "registered query references item beyond universe");
      }
    }
    if (find_live(q.id) >= 0) {
      return Status::InvalidArgument("query id already registered: " +
                                     std::to_string(q.id));
    }
    ensure_dqi();
    const size_t qi = queries.size();
    queries.push_back(q);
    q_alive.push_back(1);
    q_reg_tick.push_back(cur_tick);
    q_dereg_tick.push_back(std::numeric_limits<int>::max());
    st.plans.push_back(std::move(plan));
    st.anchors.emplace_back();
    st.anchors[qi].resize(st.plans[qi].parts.size());
    for (size_t pi = 0; pi < st.plans[qi].parts.size(); ++pi) {
      anchor_part(qi, pi);
    }
    st.violated_time.push_back(0.0);
    const std::vector<VarId> items = q.p.Variables();
    for (VarId v : items) {
      st.item_queries[static_cast<size_t>(v)].push_back(
          static_cast<int>(qi));
    }
    dqi->AddQuery(q.id, items);
    refresh_partition();
    const int lane = st.query_shard[qi];
    view_eval.AddQuery(q);
    last_user_value.push_back(view_eval.QueryValue(qi));
    uint64_t reg_id = 0;
    if (trace != nullptr) {
      obs::TraceQueryInfo info;
      info.query = q.id;
      info.node = tnode;
      if (sharded) info.shard = lane;
      info.qab = q.qab;
      for (VarId v : items) info.items.push_back(static_cast<int32_t>(v));
      trace->AddQueryInfo(std::move(info));
      obs::TraceEvent e;
      e.time = cur_now;
      e.kind = obs::TraceEventKind::kQueryRegister;
      e.node = tnode;
      e.query = q.id;
      if (sharded) e.shard = lane;
      e.a = q.qab;
      e.b = estimate;
      e.flag = degrade_attempts;
      reg_id = trace->Emit(e);
    }
    // Plan installation is coordinator work: charge the query's lane one
    // recompute per plan part, exactly as a secondary-violation replan
    // would.
    double busy = 0.0;
    for (size_t pi = 0; pi < st.plans[qi].parts.size(); ++pi) {
      busy += delays.RecomputeCpu();
    }
    const size_t lane_s = static_cast<size_t>(lane);
    st.shard_free_at[lane_s] =
        std::max(cur_now, st.shard_free_at[lane_s]) + busy;
    emit_plan_patch(reg_id);
    ship_churn_changes(items, reg_id, q.id, lane);
    if (wal_file != nullptr && replay_done) {
      recovery::AppendWalChurn(wal_file.get(), cur_tick, "register", q.id);
    }
    return Status::OK();
  };

  auto do_modify = [&](int query_id, double new_qab,
                       core::QueryPlan plan) -> Status {
    const int qi = find_live(query_id);
    if (qi < 0) {
      return Status::InvalidArgument("modify of unknown query id: " +
                                     std::to_string(query_id));
    }
    const size_t q = static_cast<size_t>(qi);
    const double old_qab = queries[q].qab;
    queries[q].qab = new_qab;
    st.plans[q] = std::move(plan);
    st.anchors[q].resize(st.plans[q].parts.size());
    for (size_t pi = 0; pi < st.plans[q].parts.size(); ++pi) {
      anchor_part(q, pi);
    }
    ensure_dqi();
    refresh_partition();
    const int lane = st.query_shard[q];
    uint64_t mod_id = 0;
    if (trace != nullptr) {
      obs::TraceEvent e;
      e.time = cur_now;
      e.kind = obs::TraceEventKind::kQueryModify;
      e.node = tnode;
      e.query = query_id;
      if (sharded) e.shard = lane;
      e.a = new_qab;
      e.b = old_qab;
      mod_id = trace->Emit(e);
    }
    double busy = 0.0;
    for (size_t pi = 0; pi < st.plans[q].parts.size(); ++pi) {
      busy += delays.RecomputeCpu();
    }
    const size_t lane_s = static_cast<size_t>(lane);
    st.shard_free_at[lane_s] =
        std::max(cur_now, st.shard_free_at[lane_s]) + busy;
    emit_plan_patch(mod_id);
    ship_churn_changes(queries[q].p.Variables(), mod_id, query_id, lane);
    if (wal_file != nullptr && replay_done) {
      recovery::AppendWalChurn(wal_file.get(), cur_tick, "modify", query_id);
    }
    return Status::OK();
  };

  auto do_deregister = [&](int query_id) -> Status {
    const int qi = find_live(query_id);
    if (qi < 0) {
      return Status::InvalidArgument("deregister of unknown query id: " +
                                     std::to_string(query_id));
    }
    const size_t q = static_cast<size_t>(qi);
    ensure_dqi();
    // The pre-removal lane stamps the trace event; afterwards the slot
    // has no lane.
    const int lane = st.query_shard[q];
    q_alive[q] = 0;
    q_dereg_tick[q] = cur_tick;
    const std::vector<VarId> items = queries[q].p.Variables();
    for (VarId v : items) {
      auto& qs = st.item_queries[static_cast<size_t>(v)];
      qs.erase(std::remove(qs.begin(), qs.end(), qi), qs.end());
    }
    st.plans[q].parts.clear();
    st.anchors[q].clear();
    dqi->RemoveQuery(qi);
    refresh_partition();
    uint64_t de_id = 0;
    if (trace != nullptr) {
      obs::TraceEvent e;
      e.time = cur_now;
      e.kind = obs::TraceEventKind::kQueryDeregister;
      e.node = tnode;
      e.query = query_id;
      if (sharded) e.shard = lane;
      de_id = trace->Emit(e);
    }
    // Dropping a query is bookkeeping, not solver work: no lane charge.
    emit_plan_patch(de_id);
    ship_churn_changes(items, de_id, /*q_id=*/-1, /*q_lane=*/-1);
    if (wal_file != nullptr && replay_done) {
      recovery::AppendWalChurn(wal_file.get(), cur_tick, "deregister",
                               query_id);
    }
    return Status::OK();
  };

  auto do_trial = [&](const PolynomialQuery& q) -> Result<core::QueryPlan> {
    for (VarId v : q.p.Variables()) {
      if (static_cast<size_t>(v) >= n_items) {
        return Status::InvalidArgument(
            "candidate query references item beyond universe");
      }
    }
    return core::PlanQueryParts(q, st.view, rates, planner_cfg);
  };

  auto do_reject = [&](int query_id, double estimate, double budget,
                       int reason) {
    // A duplicate-id attempt while the id is live is dropped rather than
    // traced: the checker's invariant is that a rejected id is not
    // active. The admission layer counts it either way.
    if (find_live(query_id) >= 0) return;
    if (trace != nullptr) {
      obs::TraceEvent e;
      e.time = cur_now;
      e.kind = obs::TraceEventKind::kAdmissionReject;
      e.node = tnode;
      e.query = query_id;
      e.a = estimate;
      e.b = budget;
      e.flag = reason;
      trace->Emit(e);
    }
  };

  EngineOps ops;
  ops.view = &st.view;
  ops.rates = &rates;
  ops.trial = do_trial;
  ops.register_fn = do_register;
  ops.modify_fn = do_modify;
  ops.deregister_fn = do_deregister;
  ops.reject_fn = do_reject;

  int aao_next_tick =
      aao_mode ? static_cast<int>(config.aao_period_s)
               : std::numeric_limits<int>::max();
  core::AaoSolution last_aao;
  bool have_aao = false;

  // Single-DAB schemes (Optimal Refresh, WSDAB) recompute on *every*
  // refresh: their correctness condition covers drift from the exact
  // anchor values only, so any view change stales the assignment (§I-B,
  // Figure 2). The Dual-DAB scheme recomputes only when a value escapes
  // its secondary range (§III-A.2).
  const bool recompute_every_refresh =
      planner_cfg.method != core::AssignmentMethod::kDualDab;

  // Deliver all messages with arrival time <= now. DAB-change events that
  // a recomputation emits at `now` (e.g. under zero delays) are picked up
  // within the same call. Non-OK only on the threaded path: a worker
  // abort latched in the pool surfaces at the next epoch await.
  auto deliver_until = [&](double now) -> Status {
    while (!st.events.empty() && st.events.top().time <= now) {
      const Event ev = st.events.top();
      st.events.pop();
      if (ev.type == EventType::kDabChange) {
        st.installed_dab[static_cast<size_t>(ev.item)] = ev.value;
        if (trace != nullptr) {
          obs::TraceEvent e;
          e.time = ev.time;
          e.kind = obs::TraceEventKind::kDabChangeInstalled;
          e.node = tnode;
          e.item = ev.item;
          e.cause = ev.trace_id;
          e.a = ev.value;
          trace->Emit(e);
        }
        continue;
      }
      if (ev.type == EventType::kAckArrive) {
        // Source side: the ack clears the retransmit obligation for this
        // seq and anything older (a newer pending seq stays live).
        PendingRefresh& p = pending[static_cast<size_t>(ev.item)];
        if (p.live && ev.seq >= p.seq) p.live = false;
        continue;
      }
      if (ev.type == EventType::kHeartbeat) {
        // Liveness only: heartbeats cost the coordinator nothing and do
        // not queue behind lane work. Event.item carries the source id.
        uint64_t hb_id = 0;
        if (trace != nullptr) {
          trace->SetNow(ev.time);
          obs::TraceEvent e;
          e.time = ev.time;
          e.kind = obs::TraceEventKind::kHeartbeat;
          e.node = tnode;
          e.source = ev.item;
          hb_id = trace->Emit(e);
        }
        record_contact(ev.item, ev.time, hb_id);
        continue;
      }
      // Each coordinator lane is a serial resource: a refresh that arrives
      // while its item's home lane is still busy (checking earlier
      // refreshes, recomputing DABs) waits in that lane's queue. This
      // queueing is what turns recomputation volume into fidelity loss
      // (§V-B.1); with one lane, every refresh waits for everything.
      const int home = st.item_home_shard[static_cast<size_t>(ev.item)];
      const size_t home_lane = static_cast<size_t>(home < 0 ? 0 : home);
      if (ev.time < st.shard_free_at[home_lane]) {
        Event deferred = ev;
        deferred.time = st.shard_free_at[home_lane];
        deferred.wait += st.shard_free_at[home_lane] - ev.time;
        st.events.push(deferred);
        continue;
      }
      if (fault_mode && ev.seq != 0 &&
          ev.seq <= delivered_seq[static_cast<size_t>(ev.item)]) {
        // An already-delivered seq (injected duplicate, or a retransmit
        // that raced its own ack): suppressed without the QAB-check cost,
        // but still a liveness contact, and re-acked in case the earlier
        // ack was the casualty.
        ++metrics.duplicates_suppressed;
        if (ins.duplicates_suppressed != nullptr) {
          ins.duplicates_suppressed->Inc();
        }
        uint64_t dup_id = 0;
        if (trace != nullptr) {
          trace->SetNow(ev.time);
          obs::TraceEvent e;
          e.time = ev.time;
          e.kind = obs::TraceEventKind::kDupSuppressed;
          e.node = tnode;
          e.source = ev.item % num_sources;
          e.item = ev.item;
          if (sharded) e.shard = static_cast<int32_t>(home_lane);
          e.cause = ev.trace_id;
          e.a = ev.value;
          e.flag = static_cast<int32_t>(ev.seq);
          dup_id = trace->Emit(e);
        }
        record_contact(ev.item % num_sources, ev.time, dup_id);
        send_ack(ev.item, ev.seq, ev.time, dup_id);
        continue;
      }
      // Refresh processing begins. The full queue wait — summed across
      // every deferral this refresh went through — is recorded exactly
      // once, now that it is known.
      if (ins.queue_wait != nullptr && ev.wait > 0.0) {
        ins.queue_wait->Record(ev.wait);
      }
      ++metrics.refreshes;
      if (ins.refreshes != nullptr) ins.refreshes->Inc();
      uint64_t arrival_id = 0;
      if (trace != nullptr) {
        trace->SetNow(ev.time);
        obs::TraceEvent e;
        e.time = ev.time;
        e.kind = obs::TraceEventKind::kRefreshArrived;
        e.node = tnode;
        e.source = ev.item % num_sources;
        e.item = ev.item;
        if (sharded) e.shard = static_cast<int32_t>(home_lane);
        e.cause = ev.trace_id;
        e.a = ev.value;
        e.b = ev.wait;
        if (ev.seq != 0) e.flag = static_cast<int32_t>(ev.seq);
        arrival_id = trace->Emit(e);
      }
      if (fault_mode && ev.seq != 0) {
        delivered_seq[static_cast<size_t>(ev.item)] = ev.seq;
        record_contact(ev.item % num_sources, ev.time, arrival_id);
        send_ack(ev.item, ev.seq, ev.time, arrival_id);
      }
      std::fill(lane_busy.begin(), lane_busy.end(), 0.0);
      pre_free = st.shard_free_at;
      std::fill(barrier_lane.begin(), barrier_lane.end(), 0);
      barrier_any = false;
      lane_busy[home_lane] = delays.Check();
      st.view[static_cast<size_t>(ev.item)] = ev.value;
      view_eval.Update(static_cast<VarId>(ev.item), ev.value);
      if (threaded) {
        // Pass 1: decide the stale-part set — exactly the reads the
        // serial loop below makes, with no RNG draw and no emission —
        // and dispatch each part's re-solve to its lane's worker
        // (lane % workers). The set is stable across the two passes
        // because a part's anchors and secondary DABs only move at its
        // own install, and each part appears at most once per service.
        // Workers read st.view / rates / the part concurrently; the
        // event loop mutates none of them until the job's epoch is
        // awaited in pass 2.
        solve_jobs.clear();
        next_solve_job = 0;
        for (int qi : st.item_queries[static_cast<size_t>(ev.item)]) {
          core::QueryPlan& plan = st.plans[static_cast<size_t>(qi)];
          for (size_t pi = 0; pi < plan.parts.size(); ++pi) {
            core::PlanPart& part = plan.parts[pi];
            const int idx = part.dabs.IndexOf(static_cast<VarId>(ev.item));
            if (idx < 0) continue;
            if (part.dabs.never_stale) continue;
            if (!recompute_every_refresh) {
              const double anchor = st.anchors[static_cast<size_t>(qi)][pi]
                                              [static_cast<size_t>(idx)];
              const double drift = std::fabs(ev.value - anchor);
              const double limit =
                  part.dabs.secondary[static_cast<size_t>(idx)] *
                  (1.0 + config.violation_tol);
              if (drift <= limit) continue;
            }
            const int w = st.query_shard[static_cast<size_t>(qi)] %
                          pool.workers();
            core::PlannerConfig wcfg = planner_cfg;
            wcfg.trace_time = ev.time;
            wcfg.trace_thread = w;
            solve_jobs.emplace_back();
            SolveJob& job = solve_jobs.back();
            job.worker = w;
            const bool abort_job =
                ++solve_jobs_dispatched == config.rt_fail_at;
            core::PlanPart* jp = &part;
            job.epoch = pool.Dispatch(
                w,
                [&job, jp, &view = st.view, &rates, wcfg, abort_job]() {
                  if (abort_job) {
                    return Status::Internal(
                        "rt: injected worker abort (rt_fail_at)");
                  }
                  job.result = core::ReplanPart(*jp, view, rates, wcfg);
                  return Status::OK();
                });
          }
        }
      }
      if (batched) {
        // Pass 1 (batched serial engine): decide the stale-part set with
        // exactly the reads the serial loop below makes — the set is
        // stable across the two passes for the same reason as the
        // threaded pass 1 above — and re-solve it through the engine in
        // chunks of at most config.solve_batch programs. Results are
        // bit-identical to per-part ReplanPart calls (core::ReplanParts),
        // and solve inputs cannot change between the passes: installs
        // only mutate a part's own dabs/anchors, and each part appears at
        // most once per service.
        batch_parts.clear();
        batch_results.clear();
        next_batch_result = 0;
        for (int qi : st.item_queries[static_cast<size_t>(ev.item)]) {
          core::QueryPlan& plan = st.plans[static_cast<size_t>(qi)];
          for (size_t pi = 0; pi < plan.parts.size(); ++pi) {
            core::PlanPart& part = plan.parts[pi];
            const int idx = part.dabs.IndexOf(static_cast<VarId>(ev.item));
            if (idx < 0) continue;
            if (part.dabs.never_stale) continue;
            if (!recompute_every_refresh) {
              const double anchor = st.anchors[static_cast<size_t>(qi)][pi]
                                              [static_cast<size_t>(idx)];
              const double drift = std::fabs(ev.value - anchor);
              const double limit =
                  part.dabs.secondary[static_cast<size_t>(idx)] *
                  (1.0 + config.violation_tol);
              if (drift <= limit) continue;
            }
            batch_parts.push_back(&part);
          }
        }
        for (size_t off = 0; off < batch_parts.size();
             off += static_cast<size_t>(config.solve_batch)) {
          const size_t len =
              std::min(batch_parts.size() - off,
                       static_cast<size_t>(config.solve_batch));
          std::vector<const core::PlanPart*> chunk(
              batch_parts.begin() + static_cast<long>(off),
              batch_parts.begin() + static_cast<long>(off + len));
          std::vector<Result<QueryDabs>> chunk_results = core::ReplanParts(
              chunk, st.view, rates, planner_cfg, &solve_engine);
          for (Result<QueryDabs>& r : chunk_results) {
            batch_results.push_back(std::move(r));
          }
        }
      }
      for (int qi : st.item_queries[static_cast<size_t>(ev.item)]) {
        const size_t lane = static_cast<size_t>(st.query_shard[
            static_cast<size_t>(qi)]);
        // Push the fresh result to the user when it drifted past the QAB
        // since the last notification.
        const double qv = view_eval.QueryValue(static_cast<size_t>(qi));
        const double prev_user = last_user_value[static_cast<size_t>(qi)];
        if (std::fabs(qv - prev_user) >
            queries[static_cast<size_t>(qi)].qab) {
          last_user_value[static_cast<size_t>(qi)] = qv;
          ++metrics.user_notifications;
          if (ins.user_notifications != nullptr) ins.user_notifications->Inc();
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = ev.time;
            e.kind = obs::TraceEventKind::kUserNotification;
            e.node = tnode;
            e.item = ev.item;
            e.query = queries[static_cast<size_t>(qi)].id;
            if (sharded) e.shard = static_cast<int32_t>(lane);
            e.cause = arrival_id;
            e.a = qv;
            e.b = prev_user;
            trace->Emit(e);
          }
          lane_busy[lane] += delays.Push();
        }
        core::QueryPlan& plan = st.plans[static_cast<size_t>(qi)];
        for (size_t pi = 0; pi < plan.parts.size(); ++pi) {
          core::PlanPart& part = plan.parts[pi];
          const int idx = part.dabs.IndexOf(static_cast<VarId>(ev.item));
          if (idx < 0) continue;
          // Value-independent assignments (LAQs) never go stale.
          if (part.dabs.never_stale) continue;
          // Under Dual-DAB the recomputation's cause is the secondary
          // violation; under single-DAB staleness it is the arrival
          // itself.
          uint64_t recompute_cause = arrival_id;
          if (!recompute_every_refresh) {
            const double anchor = st.anchors[static_cast<size_t>(qi)][pi]
                                            [static_cast<size_t>(idx)];
            const double drift = std::fabs(ev.value - anchor);
            const double limit = part.dabs.secondary[static_cast<size_t>(idx)] *
                                 (1.0 + config.violation_tol);
            if (drift <= limit) continue;
            if (trace != nullptr) {
              obs::TraceEvent e;
              e.time = ev.time;
              e.kind = obs::TraceEventKind::kSecondaryViolation;
              e.node = tnode;
              e.item = ev.item;
              e.query = queries[static_cast<size_t>(qi)].id;
              e.part = static_cast<int32_t>(pi);
              if (sharded) e.shard = static_cast<int32_t>(lane);
              e.cause = arrival_id;
              e.a = ev.value;
              e.b = anchor;
              e.c = part.dabs.secondary[static_cast<size_t>(idx)];
              recompute_cause = trace->Emit(e);
            }
          }
          // This part's assignment is stale (§I-B): recompute it.
          // Warm-starting from the previous assignment keeps each
          // re-solve cheap even when every refresh triggers one.
          ++metrics.recomputations;
          if (ins.recomputations != nullptr) {
            ins.recomputations->Inc();
            (recompute_every_refresh ? ins.cause_single_dab_staleness
                                     : ins.cause_secondary_escape)
                ->Inc();
          }
          uint64_t start_id = 0;
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = ev.time;
            e.kind = obs::TraceEventKind::kRecomputeStart;
            e.node = tnode;
            e.item = ev.item;
            e.query = queries[static_cast<size_t>(qi)].id;
            e.part = static_cast<int32_t>(pi);
            if (sharded) e.shard = static_cast<int32_t>(lane);
            e.cause = recompute_cause;
            start_id = trace->Emit(e);
          }
          lane_busy[lane] += delays.RecomputeCpu();
          Result<QueryDabs> fresh = Status::Internal("rt: unreached");
          if (threaded) {
            // Pass 2 consumes the dispatched solves in the exact serial
            // order pass 1 produced them; the epoch await is the only
            // synchronization a result needs before its install.
            if (next_solve_job >= solve_jobs.size()) {
              return Status::Internal(
                  "rt: serial replay found a stale part pass 1 did not "
                  "dispatch");
            }
            SolveJob& job = solve_jobs[next_solve_job++];
            POLYDAB_RETURN_NOT_OK(pool.AwaitEpoch(job.worker, job.epoch));
            fresh = std::move(job.result);
            // The worker emitted the planner_replan event; the serial
            // oracle emits it here, between start and end — the
            // canonical re-sort (obs/trace_canon.h) restores that slot.
          } else if (batched) {
            // The batched pass already solved this part; consume in the
            // exact order pass 1 produced, and emit the planner_replan
            // event at the serial oracle's slot — core::ReplanParts
            // emits none, precisely so this site can place it between
            // recompute_start and recompute_end.
            if (next_batch_result >= batch_results.size()) {
              return Status::Internal(
                  "solve_batch: serial replay found a stale part pass 1 "
                  "did not solve");
            }
            fresh = std::move(batch_results[next_batch_result++]);
            if (trace != nullptr) {
              obs::TraceEvent e;
              e.time = trace->now();
              e.kind = obs::TraceEventKind::kPlannerReplan;
              e.node = tnode;
              e.query = part.subquery.id;
              e.flag = fresh.ok() ? 1 : 0;
              trace->Emit(e);
            }
          } else {
            fresh = core::ReplanPart(part, st.view, rates, planner_cfg);
          }
          uint64_t end_id = 0;
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = ev.time;
            e.kind = obs::TraceEventKind::kRecomputeEnd;
            e.node = tnode;
            e.item = ev.item;
            e.query = queries[static_cast<size_t>(qi)].id;
            e.part = static_cast<int32_t>(pi);
            if (sharded) e.shard = static_cast<int32_t>(lane);
            e.cause = start_id;
            e.flag = fresh.ok() ? 1 : 0;
            end_id = trace->Emit(e);
          }
          if (!fresh.ok()) {
            ++metrics.solver_failures;
            if (ins.solver_failures != nullptr) ins.solver_failures->Inc();
            continue;  // keep the stale plan; better than none
          }
          part.dabs = std::move(fresh).value();
          if (config.paranoid_validation) {
            // Only the freshly replanned part is anchored at the current
            // view; sibling parts keep their own (older) anchors.
            Status valid = core::ValidatePart(part, st.view);
            POLYDAB_CHECK(valid.ok());
          }
          anchor_part(static_cast<size_t>(qi), pi);
          ship_dab_changes(static_cast<size_t>(qi), pi, ev.time, end_id,
                           /*emit_item_barriers=*/true);
        }
      }
      if (threaded && next_solve_job != solve_jobs.size()) {
        return Status::Internal(
            "rt: pass 1 dispatched solves the serial replay never "
            "consumed");
      }
      if (batched && next_batch_result != batch_results.size()) {
        return Status::Internal(
            "solve_batch: pass 1 solved parts the serial replay never "
            "consumed");
      }
      // End of service: the home lane ran from the arrival; a lane that
      // got work dispatched from here starts once it drains its own
      // earlier work. Lanes a barrier joined then advance together.
      st.shard_free_at[home_lane] = ev.time + lane_busy[home_lane];
      if (sharded) {
        for (size_t s = 0; s < st.shard_free_at.size(); ++s) {
          if (s == home_lane || lane_busy[s] == 0.0) continue;
          const double start = std::max(ev.time, pre_free[s]);
          if (ins.shard_dispatch_wait != nullptr && start > ev.time) {
            ins.shard_dispatch_wait->Record(start - ev.time);
          }
          st.shard_free_at[s] = start + lane_busy[s];
        }
        if (barrier_any) {
          double joined = 0.0;
          for (size_t s = 0; s < st.shard_free_at.size(); ++s) {
            if (barrier_lane[s] != 0) {
              joined = std::max(joined, st.shard_free_at[s]);
            }
          }
          for (size_t s = 0; s < st.shard_free_at.size(); ++s) {
            if (barrier_lane[s] != 0) st.shard_free_at[s] = joined;
          }
        }
      }
    }
    return Status::OK();
  };

  // Per-tick activity snapshots for the rate histograms.
  int64_t tick_refresh_base = 0;
  int64_t tick_recompute_base = 0;

  // Rows consumed from the source so far (tick 0 included); the
  // streaming run length is discovered, not declared.
  int ticks_seen = 1;

  // Assemble a full snapshot of the coordinator's mutable state at the
  // end of tick `tick` (docs/RECOVERY.md). `end_id` is the id the
  // checkpoint_end event will get (0 untraced); the restart resumes event
  // numbering at end_id + 1.
  auto build_checkpoint = [&](int tick, uint64_t end_id) {
    recovery::CheckpointState snap;
    snap.tick = tick;
    snap.ticks_seen = ticks_seen;
    snap.config_fp = config_fp;
    snap.num_items = static_cast<int>(n_items);
    snap.num_sources = num_sources;
    snap.num_shards = num_shards;
    snap.trace_next_id = end_id == 0 ? 0 : end_id + 1;
    snap.ckpt_end_id = end_id;
    snap.fault_mode = fault_mode;
    snap.dqi_built = dqi != nullptr;
    snap.updates_since_rebase = view_eval.updates_since_rebase();
    snap.refreshes = metrics.refreshes;
    snap.recomputations = metrics.recomputations;
    snap.dab_change_messages = metrics.dab_change_messages;
    snap.user_notifications = metrics.user_notifications;
    snap.solver_failures = metrics.solver_failures;
    snap.fault_drops = metrics.fault_drops;
    snap.retransmits = metrics.retransmits;
    snap.duplicates_suppressed = metrics.duplicates_suppressed;
    snap.lease_expiries = metrics.lease_expiries;
    snap.degraded_query_seconds = metrics.degraded_query_seconds;
    snap.queries.reserve(queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      recovery::CheckpointQuery cq;
      cq.id = queries[qi].id;
      cq.qab = queries[qi].qab;
      cq.poly = recovery::EncodePolynomial(queries[qi].p);
      cq.alive = q_alive[qi] != 0;
      cq.reg_tick = q_reg_tick[qi];
      cq.dereg_tick = q_dereg_tick[qi] == std::numeric_limits<int>::max()
                          ? -1
                          : q_dereg_tick[qi];
      cq.violated_time = st.violated_time[qi];
      cq.last_user_value = last_user_value[qi];
      cq.shard = st.query_shard[qi];
      cq.query_value = view_eval.QueryValue(qi);
      if (fault_mode) {
        cq.degraded_items = degraded_items[qi];
        cq.degrade_event = degrade_event[qi];
      }
      snap.queries.push_back(std::move(cq));
    }
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (size_t pi = 0; pi < st.plans[qi].parts.size(); ++pi) {
        const core::PlanPart& part = st.plans[qi].parts[pi];
        recovery::CheckpointPart cp;
        cp.slot = static_cast<int>(qi);
        cp.part = static_cast<int>(pi);
        cp.poly = recovery::EncodePolynomial(part.subquery.p);
        cp.pqab = part.subquery.qab;
        cp.vars.reserve(part.dabs.vars.size());
        for (VarId v : part.dabs.vars) {
          cp.vars.push_back(static_cast<int>(v));
        }
        cp.primary = recovery::EncodeVector(part.dabs.primary);
        cp.secondary = recovery::EncodeVector(part.dabs.secondary);
        cp.recompute_rate = part.dabs.recompute_rate;
        cp.single_dab = part.dabs.single_dab;
        cp.never_stale = part.dabs.never_stale;
        cp.anchor = recovery::EncodeVector(st.anchors[qi][pi]);
        snap.parts.push_back(std::move(cp));
      }
    }
    snap.view = st.view;
    snap.source_value = st.source_value;
    snap.last_pushed = st.last_pushed;
    snap.installed_dab = st.installed_dab;
    snap.min_primary = st.min_primary;
    snap.item_home_shard = st.item_home_shard;
    snap.item_queries = st.item_queries;
    snap.item_shards = st.item_shards;
    snap.shard_free_at = st.shard_free_at;
    snap.events.reserve(st.events.c.size());
    for (const Event& ev : st.events.c) {
      recovery::CheckpointEvent ce;
      ce.time = ev.time;
      ce.type = static_cast<int>(ev.type);
      ce.item = ev.item;
      ce.value = ev.value;
      ce.trace_id = ev.trace_id;
      ce.wait = ev.wait;
      ce.seq = ev.seq;
      snap.events.push_back(ce);
    }
    if (fault_mode) {
      snap.sources.reserve(static_cast<size_t>(num_sources));
      for (int s = 0; s < num_sources; ++s) {
        const size_t ss = static_cast<size_t>(s);
        recovery::CheckpointSource cs;
        cs.source = s;
        cs.crashed_until = crashed_until[ss];
        cs.crash_event = crash_event[ss];
        cs.next_heartbeat = next_heartbeat[ss];
        cs.last_contact = last_contact[ss];
        cs.contact_event = contact_event[ss];
        snap.sources.push_back(cs);
      }
      snap.item_fault.reserve(n_items);
      for (size_t i = 0; i < n_items; ++i) {
        recovery::CheckpointItemFault cf;
        cf.item = static_cast<int>(i);
        cf.next_seq = next_seq[i];
        cf.delivered_seq = delivered_seq[i];
        cf.drop_seq = drop_seq[i];
        cf.drop_eid = drop_eid[i];
        cf.expired = item_expired[i] != 0;
        cf.expire_event = expire_event[i];
        cf.pending_live = pending[i].live;
        cf.pending_seq = pending[i].seq;
        cf.pending_value = pending[i].value;
        cf.pending_emit_id = pending[i].emit_id;
        cf.pending_next_retx = pending[i].next_retx;
        cf.pending_attempts = pending[i].attempts;
        snap.item_fault.push_back(cf);
      }
    }
    if (config.registry != nullptr) {
      for (const obs::MetricRegistry::Entry& en : config.registry->Entries()) {
        recovery::CheckpointInstrument ci;
        ci.name = en.name;
        switch (en.kind) {
          case obs::InstrumentKind::kCounter:
            ci.kind = 'c';
            ci.count = en.counter->value();
            break;
          case obs::InstrumentKind::kGauge:
            ci.kind = 'g';
            ci.value = en.gauge->value();
            break;
          case obs::InstrumentKind::kHistogram:
            ci.kind = 'h';
            en.histogram->SnapshotState(&ci.buckets, &ci.count, &ci.sum,
                                        &ci.raw_min, &ci.raw_max);
            break;
        }
        snap.instruments.push_back(std::move(ci));
      }
    }
    {
      std::ostringstream os;
      os << delays.rng().engine();
      snap.delay_rng = os.str();
    }
    {
      std::ostringstream os;
      os << faults.rng().engine();
      snap.fault_rng = os.str();
    }
    if (config.service != nullptr) {
      snap.service_state = config.service->SnapshotState();
    }
    return snap;
  };

  // ---- Restart: apply the remaining snapshot state and stage the WAL
  // replay. Everything structural (queries, plans, lanes, fault tables)
  // was restored above; what's left is the exact mutable tail — the
  // evaluator's delta chain, user-visible values, churn clocks, the
  // in-flight event heap, both RNG streams, telemetry, and the service
  // driver — plus the post-checkpoint rows to re-run. ----
  if (rec_restart) {
    last_ckpt_end_id = ckpt->ckpt_end_id;
    {
      Vector qvals(queries.size());
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        qvals[qi] = ckpt->queries[qi].query_value;
      }
      view_eval.RestoreState(st.view, std::move(qvals),
                             ckpt->updates_since_rebase);
    }
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const recovery::CheckpointQuery& cq = ckpt->queries[qi];
      last_user_value[qi] = cq.last_user_value;
      q_alive[qi] = cq.alive ? 1 : 0;
      q_reg_tick[qi] = cq.reg_tick;
      q_dereg_tick[qi] =
          cq.dereg_tick < 0 ? std::numeric_limits<int>::max() : cq.dereg_tick;
    }
    if (ckpt->dqi_built) {
      // Rebuild the dynamic index by replaying membership: every slot is
      // added in slot order (so dqi slot i == query index i, the
      // ensure_dqi invariant), then the dead ones removed. ComponentMin
      // and the shard assignment are content-determined, so the rebuilt
      // index answers identically to the crashed run's.
      ensure_dqi();
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        if (q_alive[qi] == 0) {
          dqi->RemoveQuery(static_cast<int>(qi));
        }
      }
    }
    st.events.c.clear();
    st.events.c.reserve(ckpt->events.size());
    for (const recovery::CheckpointEvent& ce : ckpt->events) {
      Event ev{ce.time, static_cast<EventType>(ce.type), ce.item, ce.value,
               ce.trace_id, ce.wait};
      ev.seq = ce.seq;
      st.events.c.push_back(ev);
    }
    {
      std::istringstream in(ckpt->delay_rng);
      in >> delays.rng().engine();
      if (in.fail()) {
        return Status::InvalidArgument(
            "restart: bad delay-RNG stream state in checkpoint");
      }
    }
    {
      std::istringstream in(ckpt->fault_rng);
      in >> faults.rng().engine();
      if (in.fail()) {
        return Status::InvalidArgument(
            "restart: bad fault-RNG stream state in checkpoint");
      }
    }
    if (config.registry != nullptr) {
      for (const recovery::CheckpointInstrument& ci : ckpt->instruments) {
        if (ci.kind == 'c') {
          obs::Counter* c = config.registry->GetCounter(ci.name);
          c->Add(ci.count - c->value());
        } else if (ci.kind == 'g') {
          config.registry->GetGauge(ci.name)->Set(ci.value);
        } else {
          config.registry->GetHistogram(ci.name)->RestoreState(
              ci.buckets, ci.count, ci.sum, ci.raw_min, ci.raw_max);
        }
      }
    } else if (!ckpt->instruments.empty()) {
      return Status::InvalidArgument(
          "restart: checkpoint carries registry instruments but the "
          "restart has no metric registry attached");
    }
    if (config.service != nullptr) {
      POLYDAB_RETURN_NOT_OK(config.service->RestoreState(ckpt->service_state));
    } else if (!ckpt->service_state.empty()) {
      return Status::InvalidArgument(
          "restart: checkpoint carries service-driver state but no "
          "service driver is attached");
    }
    if (trace != nullptr) {
      if (ckpt->trace_next_id == 0) {
        return Status::InvalidArgument(
            "restart: checkpoint was taken untraced but the restart has a "
            "trace sink");
      }
      // Continue event numbering where the snapshot left off, and hold
      // back query infos while replaying: the crashed trace already has
      // every info recorded before the crash.
      trace->SetNextId(ckpt->trace_next_id);
      trace->SuppressQueryInfos(true);
    } else if (ckpt->trace_next_id != 0) {
      return Status::InvalidArgument(
          "restart: checkpoint was taken traced but the restart has no "
          "trace sink");
    }
    ticks_seen = ckpt->ticks_seen;
    if (ckpt->shard_free_at.size() != static_cast<size_t>(num_shards)) {
      return Status::InvalidArgument(
          "restart: checkpoint lane-clock width mismatch");
    }
    st.shard_free_at = ckpt->shard_free_at;
    tick_refresh_base = metrics.refreshes;
    tick_recompute_base = metrics.recomputations;
    // Stage the replay: every WAL row after the snapshot and before the
    // crash marker, in tick order, gap-free.
    crash_marker = recovery::LastCrashMarker(*rec->wal);
    if (crash_marker == nullptr) {
      return Status::InvalidArgument(
          "restart: WAL has no crash marker (the crashed run did not "
          "terminate through the injector)");
    }
    if (crash_marker->tick <= ckpt->tick) {
      return Status::InvalidArgument(
          "restart: WAL crash marker (tick " +
          std::to_string(crash_marker->tick) +
          ") precedes the checkpoint (tick " + std::to_string(ckpt->tick) +
          "); checkpoint and WAL files disagree");
    }
    if (crash_marker->cause != last_ckpt_end_id) {
      return Status::InvalidArgument(
          "restart: WAL crash marker cites checkpoint_end id " +
          std::to_string(crash_marker->cause) +
          " but the loaded snapshot's is " +
          std::to_string(last_ckpt_end_id));
    }
    int expect = ckpt->tick + 1;
    for (const recovery::WalRecord& r : *rec->wal) {
      if (r.kind != recovery::WalRecord::Kind::kRow) continue;
      if (r.tick <= ckpt->tick || r.tick >= crash_marker->tick) continue;
      if (r.tick != expect) {
        return Status::InvalidArgument(
            "restart: WAL rows are not contiguous (expected tick " +
            std::to_string(expect) + ", found tick " +
            std::to_string(r.tick) + ")");
      }
      if (r.values.size() != n_items) {
        return Status::InvalidArgument(
            "restart: WAL row at tick " + std::to_string(r.tick) +
            " has width " + std::to_string(r.values.size()) +
            ", expected " + std::to_string(n_items));
      }
      replay_rows.push_back(&r);
      ++expect;
    }
    if (expect != crash_marker->tick) {
      return Status::InvalidArgument(
          "restart: WAL is missing rows between the checkpoint (tick " +
          std::to_string(ckpt->tick) + ") and the crash (tick " +
          std::to_string(crash_marker->tick) + ")");
    }
    replay_done = false;
  }

  for (int tick = rec_restart ? ckpt->tick + 1 : 1;; ++tick) {
    if (!replay_done && replay_idx >= replay_rows.size()) {
      // WAL exhausted: this is exactly the crashed run's crash instant.
      // Re-emit the coord_crash replica — its id must reproduce the
      // marker's, a built-in replay-determinism self-check — then mark
      // the recovery boundary and fall through to live consumption.
      replay_done = true;
      if (trace != nullptr) {
        const double ct = static_cast<double>(tick);
        trace->SetNow(ct);
        obs::TraceEvent e;
        e.time = ct;
        e.kind = obs::TraceEventKind::kCoordCrash;
        e.node = tnode;
        e.cause = last_ckpt_end_id;
        e.flag = tick;
        const uint64_t xid = trace->Emit(e);
        if (xid != crash_marker->event_id) {
          return Status::Internal(
              "recovery replay diverged: coord_crash replica got event id " +
              std::to_string(xid) + " but the crashed run recorded " +
              std::to_string(crash_marker->event_id));
        }
        obs::TraceEvent r2;
        r2.time = ct;
        r2.kind = obs::TraceEventKind::kRecoveryReplay;
        r2.node = tnode;
        r2.cause = xid;
        r2.a = static_cast<double>(replay_rows.size());
        r2.b = static_cast<double>(ckpt->tick);
        trace->Emit(r2);
        trace->SuppressQueryInfos(false);
      }
    }
    if (!replay_done) {
      const recovery::WalRecord* wr = replay_rows[replay_idx++];
      if (wr->tick != tick) {
        return Status::Internal("recovery replay desynchronized at tick " +
                                std::to_string(tick));
      }
      row = wr->values;
    } else {
      if (rec != nullptr && rec->crash_at_tick == tick) {
        // --- Injected coordinator crash: top of the tick, before the
        // tick's row is consumed, so the WAL's last row is tick - 1 and
        // the restart resumes by replaying up to exactly here. The
        // partial metrics go back to the caller; rec->crashed tells the
        // tool this was the injector, not a normal end-of-trace. ---
        uint64_t xid = 0;
        if (trace != nullptr) {
          const double ct = static_cast<double>(tick);
          trace->SetNow(ct);
          obs::TraceEvent e;
          e.time = ct;
          e.kind = obs::TraceEventKind::kCoordCrash;
          e.node = tnode;
          e.cause = last_ckpt_end_id;
          e.flag = tick;
          xid = trace->Emit(e);
        }
        if (wal_file != nullptr) {
          recovery::AppendWalCrash(wal_file.get(), tick, xid,
                                   last_ckpt_end_id);
          std::fflush(wal_file.get());
        }
        rec->crashed = true;
        rec->crash_event_id = xid;
        if (threaded) {
          POLYDAB_RETURN_NOT_OK(pool.Quiesce());
          pool.Stop();
        }
        return metrics;
      }
      {
        auto more = source.Next(&row);
        if (!more.ok()) return more.status();
        if (!*more) break;
      }
      if (wal_file != nullptr) {
        recovery::AppendWalRow(wal_file.get(), tick, row);
      }
    }
    ++ticks_seen;
    const double now = static_cast<double>(tick);

    // 1. Deliver everything that arrived since the last tick.
    POLYDAB_RETURN_NOT_OK(deliver_until(now));

    // 1a. Injected coordinator-lane stalls: the lane's busy-until clock
    //     jumps forward, so queued refreshes defer behind the outage.
    //     After delivery — messages already in by `now` predate the
    //     stall, and the trace stays time-monotonic.
    if (fault_mode && config.fault.stall_prob > 0.0) {
      for (size_t s = 0; s < st.shard_free_at.size(); ++s) {
        if (!faults.StallNow()) continue;
        const double dur = faults.StallDuration();
        st.shard_free_at[s] = std::max(st.shard_free_at[s], now) + dur;
        if (trace != nullptr) {
          trace->SetNow(now);
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kLaneStall;
          e.node = tnode;
          if (sharded) e.shard = static_cast<int32_t>(s);
          e.a = dur;
          trace->Emit(e);
        }
      }
    }

    // 1b. Runtime churn: hand the service driver the engine ops, after
    //     message delivery and before source pushes, so a query
    //     registered this tick sees (and filters) this tick's values.
    if (config.service != nullptr) {
      cur_tick = tick;
      cur_now = now;
      if (trace != nullptr) trace->SetNow(now);
      POLYDAB_RETURN_NOT_OK(config.service->OnTick(tick, now, ops));
    }

    // 2. Figure-7 mode: periodic joint AAO recomputation.
    if (aao_mode && tick >= aao_next_tick) {
      aao_next_tick += std::max(1, static_cast<int>(config.aao_period_s));
      if (threaded) {
        // Epoch barrier at the AAO global barrier: every lane's
        // dispatched solves must have completed before the joint solve
        // reads and rewrites all plans. (Each service already awaits its
        // own jobs, so this quiesce is a cheap invariant, not a stall.)
        POLYDAB_RETURN_NOT_OK(pool.Quiesce());
      }
      if (trace != nullptr) trace->SetNow(now);
      auto joint = core::SolveAao(queries, st.view, rates,
                                  planner_cfg.dual,
                                  have_aao ? &last_aao : nullptr);
      uint64_t aao_id = 0;
      if (trace != nullptr) {
        obs::TraceEvent e;
        e.time = now;
        e.kind = obs::TraceEventKind::kAaoSolve;
        e.node = tnode;
        e.a = static_cast<double>(queries.size());
        e.flag = joint.ok() ? 1 : 0;
        aao_id = trace->Emit(e);
      }
      if (!joint.ok()) {
        ++metrics.solver_failures;
        if (ins.solver_failures != nullptr) ins.solver_failures->Inc();
      } else {
        last_aao = *joint;
        have_aao = true;
        if (sharded) {
          // The joint solve reads and replaces every query's plan: one
          // global barrier joins every lane before any filter ships.
          double joined = now;
          for (double f : st.shard_free_at) joined = std::max(joined, f);
          if (ins.shard_barriers != nullptr) ins.shard_barriers->Inc();
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = now;
            e.kind = obs::TraceEventKind::kShardBarrier;
            e.node = tnode;
            e.cause = aao_id;
            e.a = joined;
            e.b = static_cast<double>(st.shard_free_at.size());
            trace->Emit(e);
          }
          st.shard_free_at.assign(st.shard_free_at.size(), joined);
        }
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ++metrics.recomputations;  // each query's DABs were recomputed
          if (ins.recomputations != nullptr) {
            ins.recomputations->Inc();
            ins.cause_aao_periodic->Inc();
          }
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = now;
            e.kind = obs::TraceEventKind::kRecomputeStart;
            e.node = tnode;
            e.query = queries[qi].id;
            e.part = 0;
            if (sharded) e.shard = st.query_shard[qi];
            e.cause = aao_id;
            const uint64_t start_id = trace->Emit(e);
            e.kind = obs::TraceEventKind::kRecomputeEnd;
            e.cause = start_id;
            e.flag = 1;  // the joint solve already succeeded
            trace->Emit(e);
          }
          st.plans[qi].parts.assign(
              1, core::PlanPart{queries[qi], joint->per_query[qi]});
          st.anchors[qi].resize(1);
          anchor_part(qi, 0);
        }
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ship_dab_changes(qi, 0, now, aao_id, /*emit_item_barriers=*/false);
        }
      }
    }

    // 3. Sources advance to this tick's trace values and push filtered
    //    changes. Fault mode first settles which sources are down this
    //    tick: a crashed source keeps drifting but emits nothing (pushes,
    //    retransmits, heartbeats) until its outage window passes.
    if (fault_mode && config.fault.crash_prob > 0.0) {
      for (int s = 0; s < num_sources; ++s) {
        const size_t ss = static_cast<size_t>(s);
        if (crashed_until[ss] > now) continue;  // already down
        if (!faults.CrashNow()) continue;
        const double dur = faults.CrashDuration();
        crashed_until[ss] = now + dur;
        if (trace != nullptr) {
          trace->SetNow(now);
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kCrash;
          e.node = tnode;
          e.source = s;
          e.a = dur;
          crash_event[ss] = trace->Emit(e);
        }
      }
    }
    for (size_t item = 0; item < n_items; ++item) {
      st.source_value[item] = row[item];
      const double dab = st.installed_dab[item];
      if (std::isinf(dab)) continue;  // item unused by any query
      if (std::fabs(st.source_value[item] - st.last_pushed[item]) > dab) {
        int64_t seq = 0;
        if (fault_mode) {
          // A crashed source neither pushes nor records the value as
          // pushed: the drift persists, so recovery pushes immediately.
          if (crashed_until[item % static_cast<size_t>(num_sources)] > now) {
            continue;
          }
          seq = next_seq[item]++;
        }
        uint64_t emit_id = 0;
        if (trace != nullptr) {
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kRefreshEmitted;
          e.node = tnode;
          e.source = static_cast<int32_t>(item) % num_sources;
          e.item = static_cast<int32_t>(item);
          e.a = st.source_value[item];
          e.b = dab;
          e.c = st.last_pushed[item];
          if (seq != 0) e.flag = static_cast<int32_t>(seq);
          emit_id = trace->Emit(e);
        }
        st.last_pushed[item] = st.source_value[item];
        if (fault_mode) {
          // Register the retransmit obligation before the send: the
          // source cannot know the copy will be lost.
          pending[item] =
              PendingRefresh{seq, st.source_value[item], emit_id,
                             now + config.fault.retx_timeout_s, 0, true};
          send_data(item, st.source_value[item], seq, emit_id,
                    /*klass=*/0, now);
        } else {
          const double delay = delays.Push() + delays.Network();
          if (ins.message_delay != nullptr) ins.message_delay->Record(delay);
          st.events.push(Event{now + delay, EventType::kRefresh,
                               static_cast<int>(item), st.source_value[item],
                               emit_id, 0.0});
        }
      }
    }

    // 3a. Reliability protocol: timeout retransmissions (exponential
    //     backoff, gap capped at 8x) and per-source heartbeats.
    if (fault_mode) {
      for (size_t item = 0; item < n_items; ++item) {
        PendingRefresh& p = pending[item];
        if (!p.live || now < p.next_retx) continue;
        const size_t src = item % static_cast<size_t>(num_sources);
        if (crashed_until[src] > now) continue;  // source down
        ++p.attempts;
        ++metrics.retransmits;
        if (ins.retransmits != nullptr) ins.retransmits->Inc();
        uint64_t rid = 0;
        if (trace != nullptr) {
          trace->SetNow(now);
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kRetransmit;
          e.node = tnode;
          e.source = static_cast<int32_t>(src);
          e.item = static_cast<int32_t>(item);
          e.cause = p.emit_id;  // the previous emission of this seq
          e.a = p.value;
          e.b = static_cast<double>(p.attempts);
          e.flag = static_cast<int32_t>(p.seq);
          rid = trace->Emit(e);
        }
        p.next_retx = now + config.fault.retx_timeout_s *
                                static_cast<double>(
                                    1 << std::min(p.attempts, 3));
        p.emit_id = rid;  // the next retransmit chains from this one
        send_data(item, p.value, p.seq, rid, /*klass=*/1, now);
      }
      for (int s = 0; s < num_sources; ++s) {
        const size_t ss = static_cast<size_t>(s);
        // The heartbeat timer freezes during a crash (no advance), so a
        // recovering source announces itself on its first live tick.
        if (source_items[ss].empty() || crashed_until[ss] > now ||
            now < next_heartbeat[ss]) {
          continue;
        }
        next_heartbeat[ss] = now + config.fault.heartbeat_s;
        if (faults.DropMessage()) {
          ++metrics.fault_drops;
          if (ins.fault_drops != nullptr) ins.fault_drops->Inc();
          if (trace != nullptr) {
            trace->SetNow(now);
            obs::TraceEvent e;
            e.time = now;
            e.kind = obs::TraceEventKind::kFaultDrop;
            e.node = tnode;
            e.source = s;
            e.b = 3.0;  // message class: heartbeat
            trace->Emit(e);
          }
          continue;
        }
        st.events.push(
            Event{now + faults.ProtocolDelay(config.delays) +
                      faults.ExtraDelay(),
                  EventType::kHeartbeat, s, 0.0, 0, 0.0});
      }
    }

    // 3b. Zero-delay messages generated this tick arrive "instantly":
    //     deliver them before sampling fidelity so that a zero-delay
    //     network preserves Condition 1 exactly.
    POLYDAB_RETURN_NOT_OK(deliver_until(now));

    // 3c. Source leases: an item whose source has been silent past
    //     lease_s plus the item's worst-case drift time (from its
    //     installed DAB and the ddm rate, capped at 3x lease_s) is
    //     declared stale; each affected query degrades — gracefully, with
    //     a widening rate |dQ/d(item)|, when the query is linear in the
    //     item, or as unboundable otherwise (core::WideningFor).
    if (fault_mode) {
      for (size_t item = 0; item < n_items; ++item) {
        if (st.item_queries[item].empty() || item_expired[item] != 0) {
          continue;
        }
        const size_t src = item % static_cast<size_t>(num_sources);
        const double rate = std::max(rates[item], core::kMinRate);
        double drift_time = st.installed_dab[item] / rate;
        if (planner_cfg.dual.ddm == core::DataDynamicsModel::kRandomWalk) {
          drift_time *= drift_time;
        }
        const double deadline =
            config.fault.lease_s +
            std::min(drift_time, 3.0 * config.fault.lease_s);
        if (now - last_contact[src] <= deadline) continue;
        item_expired[item] = 1;
        ++metrics.lease_expiries;
        if (ins.lease_expiries != nullptr) ins.lease_expiries->Inc();
        uint64_t xid = 0;
        if (trace != nullptr) {
          trace->SetNow(now);
          obs::TraceEvent e;
          e.time = now;
          e.kind = obs::TraceEventKind::kLeaseExpire;
          e.node = tnode;
          e.source = static_cast<int32_t>(src);
          e.item = static_cast<int32_t>(item);
          e.a = last_contact[src];
          e.b = deadline;
          xid = trace->Emit(e);
        }
        expire_event[item] = xid;
        for (int qi : st.item_queries[item]) {
          const size_t q = static_cast<size_t>(qi);
          if (degraded_items[q]++ != 0) continue;  // already degraded
          uint64_t did = 0;
          if (trace != nullptr) {
            const core::StalenessWidening w = core::WideningFor(
                queries[q], static_cast<VarId>(item), st.view);
            obs::TraceEvent e;
            e.time = now;
            e.kind = obs::TraceEventKind::kDegrade;
            e.node = tnode;
            e.item = static_cast<int32_t>(item);
            e.query = queries[q].id;
            e.cause = xid;
            e.a = w.sensitivity;
            e.b = rate;
            e.flag = w.boundable ? 1 : 0;
            did = trace->Emit(e);
          }
          degrade_event[q] = did;
        }
      }
    }

    // 4. Fidelity sample: is each query's QAB currently met at C?
    if (tick % config.fidelity_stride == 0) {
      int64_t sampled = 0;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        // Deregistered queries owe no fidelity (their slots persist only
        // for index stability).
        if (q_alive[qi] == 0) continue;
        ++sampled;
        const bool degraded =
            fault_mode && degraded_items[qi] > 0;
        if (degraded) {
          metrics.degraded_query_seconds +=
              static_cast<double>(config.fidelity_stride);
          if (ins.degraded_query_seconds != nullptr) {
            ins.degraded_query_seconds->Add(config.fidelity_stride);
          }
        }
        const double at_source = queries[qi].p.Evaluate(st.source_value);
        const double at_coord = view_eval.QueryValue(qi);
        if (std::fabs(at_source - at_coord) >
            queries[qi].qab * (1.0 + config.violation_tol)) {
          st.violated_time[qi] += config.fidelity_stride;
          if (trace != nullptr) {
            obs::TraceEvent e;
            e.time = now;
            e.kind = obs::TraceEventKind::kFidelityViolation;
            e.node = tnode;
            e.query = queries[qi].id;
            e.a = at_source;
            e.b = at_coord;
            e.c = queries[qi].qab;
            if (degraded) {
              // flag 1: the query is in declared-degraded service; the
              // violation is covered by the degradation announcement.
              e.flag = 1;
              e.cause = degrade_event[qi];
            } else if (fault_mode) {
              // flag 2: a concrete fault explains the stale view. The
              // deterministic blame scan (first item in Variables()
              // order whose source is mid-crash, else whose newest loss
              // is still undelivered) is mirrored exactly by the
              // offline verifier. flag stays 0 for benign violations
              // (message in flight, stale plan after solver failure).
              for (VarId v : queries[qi].p.Variables()) {
                const size_t it = static_cast<size_t>(v);
                const size_t s = it % static_cast<size_t>(num_sources);
                if (crashed_until[s] > now) {
                  e.flag = 2;
                  e.cause = crash_event[s];
                  break;
                }
                if (drop_seq[it] > delivered_seq[it]) {
                  e.flag = 2;
                  e.cause = drop_eid[it];
                  break;
                }
              }
            }
            trace->Emit(e);
          }
        }
      }
      if (config.series != nullptr) {
        config.series->AddFidelitySamples(sampled);
      }
    }

    // 5. Per-tick activity rates (events per simulated second).
    if (ins.tick_refreshes != nullptr) {
      ins.tick_refreshes->Record(
          static_cast<double>(metrics.refreshes - tick_refresh_base));
      ins.tick_recomputations->Record(
          static_cast<double>(metrics.recomputations - tick_recompute_base));
      tick_refresh_base = metrics.refreshes;
      tick_recompute_base = metrics.recomputations;
    }

    // 6. Window closes happen here, at the tick boundary and outside any
    //    Emit, so SLO alert events carry time = the boundary and precede
    //    every later-timed event (the trace stays time-monotonic).
    if (config.series != nullptr) {
      config.series->OnTickEnd(now);
    }

    // 7. Durable checkpoint at the configured simulated-time cadence
    //    (docs/RECOVERY.md). Taken at the tick boundary — the lane pool
    //    holds no in-flight work between ticks, so the snapshot is a
    //    consistent cut even under threads > 0 — and bracketed by
    //    checkpoint_begin / checkpoint_end events whose ids the snapshot
    //    itself records; the restart continues numbering after them.
    //    `replay_done` is always true by now (the replay span never
    //    contains a cadence tick, since the snapshot tick is itself the
    //    last cadence multiple before the crash), kept as a guard.
    if (rec_ckpt && replay_done && tick % rec->interval_s == 0) {
      uint64_t begin_id = 0;
      if (trace != nullptr) {
        trace->SetNow(now);
        obs::TraceEvent e;
        e.time = now;
        e.kind = obs::TraceEventKind::kCheckpointBegin;
        e.node = tnode;
        e.a = static_cast<double>(tick);
        begin_id = trace->Emit(e);
      }
      const uint64_t end_id = begin_id == 0 ? 0 : begin_id + 1;
      POLYDAB_RETURN_NOT_OK(recovery::WriteCheckpoint(
          build_checkpoint(tick, end_id), rec->checkpoint_path));
      if (wal_file != nullptr) std::fflush(wal_file.get());
      if (trace != nullptr) {
        obs::TraceEvent e;
        e.time = now;
        e.kind = obs::TraceEventKind::kCheckpointEnd;
        e.node = tnode;
        e.cause = begin_id;
        const uint64_t got = trace->Emit(e);
        if (got != end_id) {
          return Status::Internal(
              "checkpoint events interleaved with a concurrent emission");
        }
      }
      last_ckpt_end_id = end_id;
    }
  }

  if (ticks_seen < 2) {
    return Status::InvalidArgument("trace too short");
  }

  if (threaded) {
    // Shutdown barrier: every dispatched solve has been consumed by its
    // service, so this reports only a latched failure, then parks and
    // joins the workers before the final metrics are read.
    POLYDAB_RETURN_NOT_OK(pool.Quiesce());
    pool.Stop();
  }

  // Per-query fidelity loss over the query's own registration interval:
  // sampled ticks run from max(reg, 1) through min(dereg - 1, last tick).
  // For a query registered at tick 0 and never deregistered this is the
  // historical ticks - 1 denominator, bit for bit. A query whose interval
  // contains no sampled tick contributes zero loss.
  double loss_sum = 0.0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const int first = std::max(q_reg_tick[qi], 1);
    const int last = std::min(q_dereg_tick[qi] - 1, ticks_seen - 1);
    const int denom = last - first + 1;
    if (denom <= 0) continue;
    loss_sum += 100.0 * st.violated_time[qi] / static_cast<double>(denom);
  }
  metrics.mean_fidelity_loss_pct =
      loss_sum / static_cast<double>(queries.size());
  if (config.registry != nullptr) {
    config.registry->GetGauge("sim.run.queries")
        ->Set(static_cast<double>(queries.size()));
    config.registry->GetGauge("sim.run.items")
        ->Set(static_cast<double>(n_items));
    config.registry->GetGauge("sim.run.ticks")
        ->Set(static_cast<double>(ticks_seen));
    config.registry->GetGauge("sim.run.coord_shards")
        ->Set(static_cast<double>(num_shards));
    config.registry->GetGauge("sim.fidelity.mean_loss_pct")
        ->Set(metrics.mean_fidelity_loss_pct);
  }
  if (config.series != nullptr) {
    // Close the trailing partial window and write the series totals.
    // After the end-of-run gauges above, so the final window's registry
    // samples capture them.
    config.series->Finalize(static_cast<double>(ticks_seen - 1));
  }
  if (trace != nullptr) {
    // Trailing self-description: the replay verifier re-derives each of
    // these fields from the raw events and demands exact equality.
    obs::TraceRunSummary s;
    s.node = tnode;
    s.queries = static_cast<int64_t>(queries.size());
    s.ticks = ticks_seen;
    s.fidelity_stride = config.fidelity_stride;
    s.violation_tol = config.violation_tol;
    s.refreshes = metrics.refreshes;
    s.recomputations = metrics.recomputations;
    s.dab_change_messages = metrics.dab_change_messages;
    s.user_notifications = metrics.user_notifications;
    s.solver_failures = metrics.solver_failures;
    s.mean_fidelity_loss_pct = metrics.mean_fidelity_loss_pct;
    s.fault_drops = metrics.fault_drops;
    s.retransmits = metrics.retransmits;
    s.duplicates_suppressed = metrics.duplicates_suppressed;
    s.lease_expiries = metrics.lease_expiries;
    s.degraded_query_seconds = metrics.degraded_query_seconds;
    trace->AddRunSummary(s);
  }
  return metrics;
}

}  // namespace polydab::sim
