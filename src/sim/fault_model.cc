#include "sim/fault_model.h"

#include <cmath>
#include <cstdio>

namespace polydab::sim {

namespace {

Status BadField(const char* field, double value, const char* want) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "FaultConfig.%s = %g: %s", field, value,
                want);
  return Status::InvalidArgument(buf);
}

Status CheckProb(const char* field, double v) {
  if (!(std::isfinite(v) && v >= 0.0 && v <= 1.0)) {
    return BadField(field, v, "want a probability in [0, 1]");
  }
  return Status::OK();
}

Status CheckDuration(const char* field, double v) {
  if (!(std::isfinite(v) && v > 0.0)) {
    return BadField(field, v, "want a positive finite duration in seconds");
  }
  return Status::OK();
}

}  // namespace

Status FaultConfig::Validate() const {
  POLYDAB_RETURN_NOT_OK(CheckProb("drop_prob", drop_prob));
  POLYDAB_RETURN_NOT_OK(CheckProb("dup_prob", dup_prob));
  POLYDAB_RETURN_NOT_OK(CheckProb("reorder_prob", reorder_prob));
  POLYDAB_RETURN_NOT_OK(CheckProb("delay_spike_prob", delay_spike_prob));
  POLYDAB_RETURN_NOT_OK(CheckProb("crash_prob", crash_prob));
  POLYDAB_RETURN_NOT_OK(CheckProb("stall_prob", stall_prob));
  POLYDAB_RETURN_NOT_OK(CheckDuration("reorder_s", reorder_s));
  POLYDAB_RETURN_NOT_OK(CheckDuration("delay_spike_s", delay_spike_s));
  POLYDAB_RETURN_NOT_OK(CheckDuration("crash_recovery_s", crash_recovery_s));
  POLYDAB_RETURN_NOT_OK(CheckDuration("stall_s", stall_s));
  POLYDAB_RETURN_NOT_OK(CheckDuration("retx_timeout_s", retx_timeout_s));
  POLYDAB_RETURN_NOT_OK(CheckDuration("heartbeat_s", heartbeat_s));
  POLYDAB_RETURN_NOT_OK(CheckDuration("lease_s", lease_s));
  return Status::OK();
}

std::string FaultConfig::Describe() const {
  char buf[352];
  std::snprintf(
      buf, sizeof(buf),
      "drop=%g dup=%g reorder=%g/%gs spike=%g/%gs crash=%g/%gs "
      "stall=%g/%gs retx_timeout_s=%g heartbeat_s=%g lease_s=%g",
      drop_prob, dup_prob, reorder_prob, reorder_s, delay_spike_prob,
      delay_spike_s, crash_prob, crash_recovery_s, stall_prob, stall_s,
      retx_timeout_s, heartbeat_s, lease_s);
  return buf;
}

}  // namespace polydab::sim
