#ifndef POLYDAB_SIM_DELAY_MODEL_H_
#define POLYDAB_SIM_DELAY_MODEL_H_

#include "common/rng.h"
#include "common/status.h"

/// \file delay_model.h
/// §V-A "Delays": communication delays drawn from a heavy-tailed Pareto
/// distribution with a node–node mean around 100–120 ms; computational
/// delays at a coordinator likewise Pareto with a 4 ms mean for the QAB
/// check on a refresh and 1 ms for pushing a result to a user. All values
/// in seconds. A zero_delay switch models the paper's idealized analysis
/// setting (Condition 1 guarantees QABs exactly when delays are zero).

namespace polydab::sim {

struct DelayConfig {
  bool zero_delay = false;
  double node_node_mean = 0.110;  ///< network hop, seconds
  double check_mean = 0.004;      ///< per-refresh QAB check at coordinator
  double push_mean = 0.001;       ///< pushing a query result to the user
  /// CPU time one DAB recomputation occupies the coordinator for. The
  /// coordinator is a serial resource: refresh processing queues behind
  /// in-progress work, which is how a recomputation-heavy scheme degrades
  /// fidelity (§V-B.1: "the lower the number of recomputations, the lower
  /// the load on the coordinator ... leading to better fidelity").
  double recompute_cpu_s = 0.002;
  double pareto_shape = 2.5;

  /// Reject negative or non-finite fields with a diagnostic naming the
  /// field (a NaN mean would silently poison every sampled delay; a
  /// non-positive Pareto mean would abort mid-run inside Rng::Pareto).
  /// Zero delay means and shape <= 1 are only rejected when zero_delay is
  /// false — with zero_delay the samplers never run, so the idealized
  /// configs stay expressible. recompute_cpu_s = 0 stays legal either
  /// way (RecomputeCpu treats it as "free recomputation").
  Status Validate() const;
};

/// Stateful sampler for the three delay kinds.
class DelayModel {
 public:
  DelayModel(const DelayConfig& config, Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  double Network() {
    return config_.zero_delay ? 0.0
                              : rng_.Pareto(config_.node_node_mean,
                                            config_.pareto_shape);
  }
  double Check() {
    return config_.zero_delay
               ? 0.0
               : rng_.Pareto(config_.check_mean, config_.pareto_shape);
  }
  double Push() {
    return config_.zero_delay
               ? 0.0
               : rng_.Pareto(config_.push_mean, config_.pareto_shape);
  }
  double RecomputeCpu() {
    if (config_.zero_delay || config_.recompute_cpu_s <= 0.0) return 0.0;
    return rng_.Pareto(config_.recompute_cpu_s, config_.pareto_shape);
  }

  const DelayConfig& config() const { return config_; }

  /// Crash-recovery checkpoint support (src/recovery/): the model's RNG
  /// stream is the only mutable state, serialized/restored through the
  /// mt19937_64 stream operators so a restarted run draws the exact
  /// delay sequence the crashed run would have.
  Rng& rng() { return rng_; }

 private:
  DelayConfig config_;
  Rng rng_;
};

}  // namespace polydab::sim

#endif  // POLYDAB_SIM_DELAY_MODEL_H_
