#ifndef POLYDAB_SIM_FAULT_MODEL_H_
#define POLYDAB_SIM_FAULT_MODEL_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "sim/delay_model.h"

/// \file fault_model.h
/// Seeded fault injection plus the knobs of the reliability protocol that
/// survives it (docs/ROBUSTNESS.md). The paper's correctness condition
/// (§III: every QAB holds because every DAB violation is pushed) assumes
/// a lossless, live network; FaultConfig drops/duplicates/reorders
/// individual messages, crashes whole sources and stalls coordinator
/// lanes, all driven by a dedicated RNG stream forked from the run seed —
/// so every chaos run replays bit-identically and a null config perturbs
/// nothing (the simulator's existing RNG draw order is untouched).
///
/// The protocol knobs (retransmit timeout, heartbeat period, lease
/// duration) govern the reliability layer the simulator runs whenever the
/// config is active: sequence-numbered refreshes acked by the
/// coordinator and retransmitted with exponential backoff, per-source
/// heartbeats, and per-item leases whose expiry degrades the affected
/// queries instead of silently serving stale values as in-bound.

namespace polydab::sim {

struct FaultConfig {
  // --- Injection knobs. All zero (the default) = no faults injected. ---
  double drop_prob = 0.0;        ///< per message: silently dropped
  double dup_prob = 0.0;         ///< per data message: a second copy sent
  double reorder_prob = 0.0;     ///< per message: held back ~reorder_s
  double reorder_s = 0.5;        ///< mean extra holding delay
  double delay_spike_prob = 0.0; ///< per message: a long delay spike
  double delay_spike_s = 2.0;    ///< mean spike duration
  double crash_prob = 0.0;       ///< per source per tick: crash starts
  double crash_recovery_s = 30.0;///< mean crash outage duration
  double stall_prob = 0.0;       ///< per lane per tick: lane stalls
  double stall_s = 1.0;          ///< mean stall duration

  // --- Reliability-protocol knobs (used whenever the config is active). ---
  /// Base ack timeout before a source retransmits an unacked refresh;
  /// doubles per attempt, capped at 8x.
  double retx_timeout_s = 2.0;
  /// Period of per-source liveness heartbeats to the coordinator.
  double heartbeat_s = 5.0;
  /// Base per-item lease: the coordinator declares an item's source dead
  /// after lease_s plus the item's worst-case drift time (from its
  /// installed DAB and ddm rate) without any contact from the source.
  double lease_s = 15.0;

  /// Run the reliability protocol (seq/ack/retransmit/lease) even with
  /// zero injection probabilities — for differential tests that need the
  /// protocol path exercised under fault-free conditions.
  bool protocol_only = false;

  /// Any injection probability set?
  bool injects() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0 ||
           delay_spike_prob > 0.0 || crash_prob > 0.0 || stall_prob > 0.0;
  }
  /// Anything to do at all? false = the null config: the simulator takes
  /// no fault branch, draws nothing from the fault RNG stream and emits
  /// byte-identical traces to a build without this layer.
  bool active() const { return injects() || protocol_only; }

  /// Reject probabilities outside [0,1] and negative or non-finite
  /// durations with a diagnostic naming the field.
  Status Validate() const;

  /// One-line rendering of the non-default knobs, for run reports.
  std::string Describe() const;
};

/// Stateful fault sampler. Owns the dedicated fault RNG stream so that
/// injection decisions never perturb the simulator's delay or workload
/// draws: a run with faults enabled but zero probabilities produces the
/// same data-path timings as a fault-free run.
class FaultModel {
 public:
  FaultModel(const FaultConfig& config, Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  bool DropMessage() { return rng_.Bernoulli(config_.drop_prob); }
  bool DuplicateMessage() { return rng_.Bernoulli(config_.dup_prob); }
  bool CrashNow() { return rng_.Bernoulli(config_.crash_prob); }
  bool StallNow() { return rng_.Bernoulli(config_.stall_prob); }

  /// Extra in-flight delay from reordering holds and delay spikes;
  /// 0 when neither fires.
  double ExtraDelay() {
    double d = 0.0;
    if (config_.reorder_prob > 0.0 && rng_.Bernoulli(config_.reorder_prob)) {
      d += rng_.Uniform(0.5 * config_.reorder_s, 1.5 * config_.reorder_s);
    }
    if (config_.delay_spike_prob > 0.0 &&
        rng_.Bernoulli(config_.delay_spike_prob)) {
      d += rng_.Uniform(0.5 * config_.delay_spike_s,
                        1.5 * config_.delay_spike_s);
    }
    return d;
  }

  double CrashDuration() {
    return rng_.Uniform(0.5 * config_.crash_recovery_s,
                        1.5 * config_.crash_recovery_s);
  }
  double StallDuration() {
    return rng_.Uniform(0.5 * config_.stall_s, 1.5 * config_.stall_s);
  }

  /// Network delay for protocol-generated messages (acks, heartbeats,
  /// retransmitted copies), drawn from the fault RNG so the count of
  /// protocol messages never shifts the main delay stream.
  double ProtocolDelay(const DelayConfig& delays) {
    return delays.zero_delay
               ? 0.0
               : rng_.Pareto(delays.node_node_mean, delays.pareto_shape);
  }

  const FaultConfig& config() const { return config_; }

  /// Crash-recovery checkpoint support (src/recovery/): see
  /// DelayModel::rng().
  Rng& rng() { return rng_; }

 private:
  FaultConfig config_;
  Rng rng_;
};

}  // namespace polydab::sim

#endif  // POLYDAB_SIM_FAULT_MODEL_H_
