#ifndef POLYDAB_SIM_SIMULATION_H_
#define POLYDAB_SIM_SIMULATION_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/planner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/delay_model.h"
#include "sim/fault_model.h"
#include "workload/tick_source.h"
#include "workload/trace.h"

/// \file simulation.h
/// Event-driven source/coordinator simulation reproducing the paper's
/// evaluation methodology (§V-A):
///
/// * Sources replay per-item traces (1 tick = 1 s) and push a refresh when
///   an item drifts beyond its installed primary DAB since the last push.
/// * The coordinator maintains a view of item values; each arriving
///   refresh is checked against every affected query's *secondary* DAB
///   range. A violation triggers a DAB recomputation for that query
///   (PlanQuery, warm-started), updates the per-item minimum primary DABs
///   (the EQI merge of §IV) and sends DAB-change messages to sources.
/// * Message and computation delays are heavy-tailed Pareto (delay_model.h).
/// * Metrics: refreshes, recomputations, DAB-change messages, fidelity
///   loss (time-fraction a query's QAB is violated, sampled per tick), and
///   total cost = refreshes + mu * recomputations — the paper's four
///   metrics.
///
/// Single-DAB methods (Optimal Refresh, WSDAB) fall out naturally: their
/// secondary equals their primary, so essentially every refresh that
/// escapes a query's own bound forces a recomputation — the §I-B behaviour
/// the Dual-DAB approach is designed to avoid.

namespace polydab::obs {
class SeriesRecorder;  // obs/timeseries.h; kept out of this header's deps
}

namespace polydab::recovery {
struct RecoveryConfig;  // recovery/recovery.h; kept out of this header's deps
}

namespace polydab::sim {

/// How queries are partitioned across coordinator lanes when
/// SimConfig::coord_shards > 1.
enum class ShardPolicy : uint8_t {
  /// EQI-aware (default): queries connected through shared items land on
  /// the same lane (core::QueryIndex::ShardByComponent), so every
  /// per-item min-DAB merge is lane-local and the only cross-shard
  /// synchronization left is the periodic AAO joint solve.
  kEqiComponents,
  /// Mixed hash of the query id (core::QueryIndex::ShardByQueryId):
  /// balanced regardless of item-sharing structure, but queries sharing
  /// an item may land on different lanes, so their EQI merges go through
  /// explicit shard-barrier synchronization (traced as kShardBarrier).
  kQueryHash,
};

/// Serialization name, e.g. "eqi_components".
const char* Name(ShardPolicy policy);

/// How the engine maintains its plan state (EQI components, shard
/// assignment, per-item min-DAB merges) across runtime query churn
/// (docs/SERVICE.md). Both modes produce bit-identical observable state —
/// the churn differential test and the tracecheck plan_patch invariant
/// enforce it — so kRebuild exists as the checked fallback oracle, not as
/// a different behaviour.
enum class PlanMaintenance : uint8_t {
  kIncremental,  ///< merge/split components in place at each churn event
  kRebuild,      ///< re-derive everything from scratch at each churn event
};

/// Serialization name: "incremental" / "rebuild".
const char* Name(PlanMaintenance maintenance);

/// \brief Engine-side operations the service layer drives at runtime
/// (docs/SERVICE.md). Implemented by the simulation; handed to
/// ServiceHooks::OnTick once per tick. All state mutations — plan
/// installation, EQI merge refresh, filter re-shipping, lane-time
/// charging, trace emission — happen inside the engine so the event
/// stream stays consistent regardless of who drives the churn.
class ServiceOps {
 public:
  virtual ~ServiceOps() = default;

  /// The coordinator's current item view / the planner's rate estimates.
  virtual const Vector& View() const = 0;
  virtual const Vector& Rates() const = 0;

  /// Plan a candidate query against the current view without registering
  /// it — the admission controller's costing probe. Does not mutate
  /// engine state (the planner may emit planner_plan trace events).
  virtual Result<core::QueryPlan> TrialPlan(const PolynomialQuery& query) = 0;

  /// Register \p query with the given (already solved) plan. Emits
  /// query_register + plan_patch, refreshes the EQI merge, ships changed
  /// filters, and charges the query's lane one recompute per plan part.
  /// \p admission_estimate and \p degrade_attempts are recorded on the
  /// trace event for offline audit.
  virtual Status Register(const PolynomialQuery& query, core::QueryPlan plan,
                          double admission_estimate,
                          int degrade_attempts) = 0;

  /// Change a live query's QAB, installing the re-solved \p plan.
  virtual Status Modify(int query_id, double new_qab,
                        core::QueryPlan plan) = 0;

  /// Remove a live query; its items' merged filters widen (or retire)
  /// accordingly.
  virtual Status Deregister(int query_id) = 0;

  /// Record a rejected registration (admission_reject trace event).
  /// \p reason: 0 = over recompute budget, 1 = planning failed,
  /// 2 = invalid query.
  virtual void AdmissionReject(int query_id, double estimate, double budget,
                               int reason) = 0;
};

/// \brief Runtime churn driver (svc::QueryService, or a test double).
/// Called once per simulated tick, after message delivery and before
/// source pushes, with the engine's logical clock.
class ServiceHooks {
 public:
  virtual ~ServiceHooks() = default;
  virtual Status OnTick(int tick, double now, ServiceOps& ops) = 0;

  /// Crash-recovery checkpoint support (src/recovery/,
  /// docs/RECOVERY.md): serialize the driver's full mutable state into an
  /// opaque string the checkpoint embeds, and reinstate it on restart.
  /// The base implementations are for stateless drivers; a stateful
  /// driver (svc::QueryService) must round-trip bit-exactly or the
  /// restarted run diverges from the oracle.
  virtual std::string SnapshotState() const { return std::string(); }
  virtual Status RestoreState(const std::string& state) {
    if (!state.empty()) {
      return Status::InvalidArgument(
          "service driver has no state restore but checkpoint carries "
          "service state");
    }
    return Status::OK();
  }
};

struct SimConfig {
  core::PlannerConfig planner;
  DelayConfig delays;
  /// Fault injection + reliability protocol (sim/fault_model.h,
  /// docs/ROBUSTNESS.md). The default (inactive) config takes no fault
  /// branch anywhere and produces traces and metrics bit-identical to a
  /// build without the fault layer. When active, refreshes carry sequence
  /// numbers, the coordinator acks them, unacked refreshes retransmit
  /// with exponential backoff, sources heartbeat, and per-item lease
  /// expiry degrades the affected queries instead of silently serving
  /// stale values as in-bound. All fault randomness comes from a
  /// dedicated RNG stream forked from `seed`, so chaos runs replay
  /// bit-identically and never perturb the delay/workload draws.
  FaultConfig fault;
  int num_sources = 20;
  uint64_t seed = 1;
  /// Figure 7's AAO-T mode: when > 0 (seconds) and the planner method is
  /// kDualDab, all queries' DABs are recomputed jointly (SolveAao) every
  /// aao_period_s; between periods, per-query secondary violations are
  /// repaired with individual Dual-DAB solves. Each query refreshed by a
  /// joint solve counts as one recomputation.
  double aao_period_s = 0.0;
  /// Coordinator lanes. 1 (the default) is the serial coordinator of
  /// §V-B.1 — one busy-until clock, every recomputation blocks every
  /// refresh — and is bit-identical to the historical implementation
  /// (enforced by tests/coord_shard_diff_test.cc). With N > 1 the queries
  /// are partitioned across N lanes per `shard_policy`; each lane has its
  /// own busy-until clock and queue, a refresh waits only for its item's
  /// home lane, and cross-lane work synchronizes through shard barriers
  /// (see DESIGN.md, "Sharded coordinator").
  int coord_shards = 1;
  ShardPolicy shard_policy = ShardPolicy::kEqiComponents;
  /// Real-thread lane runtime (src/rt/, docs/CONCURRENCY.md). 0 (the
  /// default) is the single-threaded virtual-clock event loop,
  /// byte-identical to every earlier build. With N >= 1 the run starts an
  /// rt::LanePool of N `std::jthread` workers and executes the
  /// deterministic per-part GP re-solves — the dominant cost of every
  /// refresh service — on them: each service dispatches its stale parts
  /// to the workers' lock-free SPSC rings (a part's worker is its lane
  /// modulo N), then replays the service in exact oracle order, awaiting
  /// each solve's epoch just before its install. Virtual time, RNG draws
  /// and all protocol decisions stay on the event-loop thread, so
  /// metrics, registry and the canonicalized trace
  /// (obs/trace_canon.h) are byte-identical to the threads = 0 oracle
  /// under the same seed — enforced by tests/threaded_diff_test.cc.
  /// Incompatible with `series` (the recorder folds the raw emission
  /// order). Excluded from Describe() so threaded and oracle run reports
  /// stay comparable; the trace instead carries `rt_threads` /
  /// `rt_queue_cap` info keys, stripped by canonicalization.
  int threads = 0;
  /// Per-worker SPSC job-ring capacity (rounded up to a power of two);
  /// dispatch yield-spins while a ring is full. Only read when
  /// threads > 0; must then be >= 1.
  int rt_queue_cap = 256;
  /// Fault hook for the worker-abort path (tools/partial_metrics.cmake):
  /// the k-th dispatched solve job (1-based, in dispatch order) fails
  /// with an internal error inside the worker, which latches the pool
  /// failure and aborts the run through the normal status=failed partial
  /// metrics machinery. 0 (the default) = never. Only read when
  /// threads > 0.
  int64_t rt_fail_at = 0;
  /// Batched GP solving for the serial engine (gp/solve_engine.h,
  /// docs/SOLVER.md): when > 0, each refresh service decides its stale-
  /// part set in a read-only first pass and re-solves it through
  /// `gp::SolveEngine::SolveBatch` in chunks of at most this many
  /// programs, sharing per-shape skeletons, workspaces and cached term
  /// logarithms across the chunk. Metrics, registry totals and the trace
  /// are byte-identical to the unbatched oracle
  /// (tests/solve_engine_diff_test.cc). Requires threads == 0 — the
  /// real-thread runtime has its own two-pass dispatch. Excluded from
  /// Describe() like `threads`, so batched and oracle run reports stay
  /// comparable.
  int solve_batch = 0;
  /// Capacity, in entries, of the solve engine's exact-match LRU memo;
  /// 0 (the default) disables it. A hit replays a memoized solution and
  /// its gp.solver.* instrument stats, bit-identical to re-running the
  /// deterministic solver on the same input bits (identical programs are
  /// common: EQI-equivalent queries produce bitwise-equal GPs). Valid
  /// with both the serial and the threads > 0 engines. Excluded from
  /// Describe() like `threads`.
  int solve_cache = 0;
  /// Evaluate fidelity every N ticks (1 = every second).
  int fidelity_stride = 1;
  /// Relative slack when testing secondary-range violations, guarding
  /// against pure round-off retriggering.
  double violation_tol = 1e-9;
  /// Validate every plan against core/validator.h after each
  /// (re)computation; a failed validation aborts the run with an error.
  /// Used by tests and debugging, off by default for speed.
  bool paranoid_validation = false;
  /// Optional telemetry sink (docs/OBSERVABILITY.md). When set, the run
  /// records the `sim.*` instruments — coordinator counters mirroring
  /// SimMetrics exactly, per-tick refresh/recompute-rate histograms,
  /// message-delay and queue-wait histograms, recompute-cause counters —
  /// and the registry is propagated into the planner and GP solver
  /// (`core.planner.*`, `gp.solver.*`). Null (the default) keeps every
  /// instrumented path behind a single branch with no other overhead.
  /// Not owned; must outlive the run.
  obs::MetricRegistry* registry = nullptr;
  /// Optional causal event trace (obs/trace.h). When set, the run records
  /// every protocol event — refresh emitted/arrived, secondary violation,
  /// recompute start/end, DAB-change sent/installed, AAO solves, user
  /// notifications, per-query fidelity violations — with cause links, a
  /// query_info record per query, and a trailing run summary mirroring
  /// the returned SimMetrics, so tools/polydab_tracecheck.cc can replay
  /// and verify the run offline. The sink is propagated into the planner.
  /// Null (the default) keeps every emission site behind one branch.
  /// Not owned; must outlive the run.
  obs::TraceSink* trace = nullptr;
  /// Node id stamped on traced events; overlay drivers that run one
  /// simulation per coordinator into a shared sink (net/dissemination.cc)
  /// set it so the streams stay separable. -1 = single coordinator.
  int32_t trace_node = -1;
  /// Optional windowed time-series recorder (obs/timeseries.h,
  /// docs/OBSERVABILITY.md "Time series, SLOs and monitoring"). When set,
  /// the run installs it as the trace sink's observer, feeds it fidelity
  /// sample counts, drives window closes at tick boundaries (so SLO
  /// alert events land before any later-timed event), and stamps the
  /// series metadata (`series_window_s`, `slo_rules`, `series_breakdown`)
  /// into the trace info so the checker's alerting mode can replay the
  /// series exactly. Requires `trace` (alerts are emitted into it); a
  /// single-coordinator run only. Null (the default) leaves the run
  /// byte-identical to a series-free one. Not owned; must outlive the run.
  obs::SeriesRecorder* series = nullptr;
  /// Optional runtime churn driver (docs/SERVICE.md): called once per
  /// tick to register/modify/deregister queries through ServiceOps. Null
  /// (the default) — and equally a driver that never issues an op —
  /// leaves the run byte-identical (trace, metrics, registry) to the
  /// historical fixed-query path; every churn site below is gated on a
  /// churn op actually happening. Incompatible with aao_period_s > 0 and
  /// with active fault injection. Not owned; must outlive the run.
  ServiceHooks* service = nullptr;
  /// Plan-maintenance strategy for runtime churn; ignored without a
  /// service driver. kRebuild is the checked from-scratch fallback.
  PlanMaintenance plan_maintenance = PlanMaintenance::kIncremental;
  /// Optional crash-recovery layer (src/recovery/recovery.h,
  /// docs/RECOVERY.md): durable coordinator checkpoints at a simulated-
  /// time cadence, a write-ahead log of consumed ticks, an injected
  /// coordinator crash, and a restart path that resumes a crashed run
  /// bit-identically. Null (the default) leaves the run byte-identical
  /// (trace, metrics, registry) to a build without the recovery layer.
  /// Incompatible with `series`, solve_batch/solve_cache > 0,
  /// aao_period_s > 0 and rt_fail_at > 0. Not owned; must outlive the
  /// run; `crashed`/`crash_event_id` are written back as outputs.
  recovery::RecoveryConfig* recovery = nullptr;

  /// One-line rendering of the full configuration, for run reports and
  /// test-failure messages.
  std::string Describe() const;
};

std::ostream& operator<<(std::ostream& os, const SimConfig& config);

struct SimMetrics {
  int64_t refreshes = 0;          ///< refresh messages arriving at C
  int64_t recomputations = 0;     ///< per-query DAB recomputation events
  int64_t dab_change_messages = 0;///< C -> source filter updates sent
  int64_t user_notifications = 0; ///< query results pushed to users
  int64_t solver_failures = 0;    ///< plans kept stale due to solve errors
  double mean_fidelity_loss_pct = 0.0;  ///< mean over queries, in percent

  // Fault-mode counters (all zero when SimConfig::fault is inactive).
  int64_t fault_drops = 0;            ///< injected message losses
  int64_t retransmits = 0;            ///< refresh copies re-sent after timeout
  int64_t duplicates_suppressed = 0;  ///< already-delivered seqs ignored at C
  int64_t lease_expiries = 0;         ///< per-item source leases lapsed
  /// Sum over queries of seconds spent in degraded service (lease expired
  /// on one of the query's items and not yet recovered), accumulated at
  /// fidelity_stride granularity.
  double degraded_query_seconds = 0.0;

  /// The paper's total cost metric: refreshes + mu * recomputations.
  /// The default μ is the shared core::kDefaultMu constant so every
  /// harness prices recomputations identically unless it sweeps μ.
  double TotalCost(double mu = core::kDefaultMu) const {
    return static_cast<double>(refreshes) +
           mu * static_cast<double>(recomputations);
  }
};

/// \brief Run the full push-based simulation of \p queries over \p traces.
///
/// \p rates are the per-item λ estimates fed to the planner (see
/// workload/rate_estimator.h). Deterministic given config.seed.
Result<SimMetrics> RunSimulation(const std::vector<PolynomialQuery>& queries,
                                 const workload::TraceSet& traces,
                                 const Vector& rates,
                                 const SimConfig& config);

/// \brief Streaming-ingest form: ticks are pulled one row at a time from
/// \p source (workload/tick_source.h) until end of stream; the run length
/// is however many rows the source yields. The canned overload above is a
/// thin adapter over this one, and a TraceSetTickSource-driven run is
/// byte-identical to it (tests/churn_diff_test.cc). The stream must
/// yield at least two rows (tick 0 plus one simulated tick).
Result<SimMetrics> RunSimulation(const std::vector<PolynomialQuery>& queries,
                                 workload::TickSource& source,
                                 const Vector& rates,
                                 const SimConfig& config);

}  // namespace polydab::sim

#endif  // POLYDAB_SIM_SIMULATION_H_
