#ifndef POLYDAB_COMMON_LOGGING_H_
#define POLYDAB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// \file logging.h
/// Minimal assertion macros for internal invariants. These are programmer
/// errors, not recoverable conditions, so they abort (Status/Result is used
/// for recoverable errors — see status.h).

/// Abort with a message when an internal invariant is violated.
#define POLYDAB_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "POLYDAB_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                            \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define POLYDAB_DCHECK(cond) POLYDAB_CHECK(cond)

#endif  // POLYDAB_COMMON_LOGGING_H_
