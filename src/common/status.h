#ifndef POLYDAB_COMMON_STATUS_H_
#define POLYDAB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// Arrow/RocksDB-style error handling for polydab. Library code does not
/// throw; fallible operations return Status or Result<T>.

namespace polydab {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotConverged,   ///< iterative solver failed to reach tolerance
  kInfeasible,     ///< optimization problem has no feasible point
  kUnsupported,    ///< valid input outside the implemented feature set
  kInternal,
};

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// One-line rendering, e.g. "InvalidArgument: QAB must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : payload_(std::move(value)) {}
  /*implicit*/ Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the operation; OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Access the contained value. Undefined if !ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagate a non-OK Status to the caller.
#define POLYDAB_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::polydab::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluate a Result-returning expression; bind its value or propagate.
#define POLYDAB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define POLYDAB_ASSIGN_OR_RETURN(lhs, expr) \
  POLYDAB_ASSIGN_OR_RETURN_IMPL(            \
      POLYDAB_CONCAT_(_result_, __LINE__), lhs, expr)

#define POLYDAB_CONCAT_INNER_(a, b) a##b
#define POLYDAB_CONCAT_(a, b) POLYDAB_CONCAT_INNER_(a, b)

}  // namespace polydab

#endif  // POLYDAB_COMMON_STATUS_H_
