#ifndef POLYDAB_COMMON_HASH_H_
#define POLYDAB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

/// \file hash.h
/// Deterministic non-cryptographic hashes shared across layers. The
/// coordinator's shard assignment (core/query_index.cc), the service
/// layer's plan-patch digests (sim/simulation.cc) and the offline trace
/// checker's from-scratch re-derivation (obs/trace_check.cc) must all
/// agree bit-for-bit, so the primitives live here rather than in any one
/// of those modules.

namespace polydab {

/// splitmix64 finalizer. Query ids are typically small and dense; hashing
/// them apart keeps lane assignments balanced and independent of id
/// numbering.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a offset basis, exposed so digests can be chained incrementally.
inline constexpr uint32_t kFnv1a32Seed = 2166136261u;

/// 32-bit FNV-1a over a byte range, continuing from \p seed.
inline uint32_t Fnv1a32(const void* data, size_t len,
                        uint32_t seed = kFnv1a32Seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint32_t>(p[i]);
    h *= 16777619u;
  }
  return h;
}

/// Fold one live query's plan record — (query id, lane, EQI component
/// label, QAB bit pattern) — into a chained FNV-1a digest. The engine
/// hashes every live query in ascending-id order at each churn point
/// (plan_patch trace events); the offline checker re-derives the digest
/// from scratch and demands equality, so the exact byte layout lives here.
inline uint32_t HashPlanRecord(uint32_t digest, int32_t query_id,
                               int32_t shard, int32_t comp_min, double qab) {
  const int32_t fields[3] = {query_id, shard, comp_min};
  digest = Fnv1a32(fields, sizeof(fields), digest);
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(qab));
  std::memcpy(&bits, &qab, sizeof(bits));
  return Fnv1a32(&bits, sizeof(bits), digest);
}

}  // namespace polydab

#endif  // POLYDAB_COMMON_HASH_H_
