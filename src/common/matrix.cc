#include "common/matrix.h"

#include <cmath>

namespace polydab {

double Dot(const Vector& a, const Vector& b) {
  POLYDAB_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double s, const Vector& b, Vector* a) {
  POLYDAB_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

Vector Matrix::Multiply(const Vector& x) const {
  POLYDAB_CHECK(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector Matrix::MultiplyTranspose(const Vector& x) const {
  POLYDAB_CHECK(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

namespace {

// In-place Cholesky of the lower triangle; returns false if a pivot is not
// safely positive.
bool CholeskyFactor(Matrix* a) {
  const size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double d = (*a)(j, j);
    for (size_t k = 0; k < j; ++k) d -= (*a)(j, k) * (*a)(j, k);
    if (!(d > 1e-300)) return false;
    const double lj = std::sqrt(d);
    (*a)(j, j) = lj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = (*a)(i, j);
      for (size_t k = 0; k < j; ++k) s -= (*a)(i, k) * (*a)(j, k);
      (*a)(i, j) = s / lj;
    }
  }
  return true;
}

Vector CholeskySolveFactored(const Matrix& l, const Vector& b) {
  const size_t n = l.rows();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace

Result<Vector> SolveCholesky(const Matrix& a, const Vector& b, double reg) {
  POLYDAB_CHECK(a.rows() == a.cols());
  POLYDAB_CHECK(a.rows() == b.size());
  const size_t n = a.rows();

  // Scale the initial ridge to the matrix diagonal so behaviour is
  // invariant to the problem's overall magnitude.
  double diag_max = 0.0;
  for (size_t i = 0; i < n; ++i) diag_max = std::max(diag_max, std::fabs(a(i, i)));
  if (diag_max == 0.0) diag_max = 1.0;

  double ridge = reg;
  for (int attempt = 0; attempt < 12; ++attempt) {
    Matrix l = a;
    if (ridge > 0.0) {
      for (size_t i = 0; i < n; ++i) l(i, i) += ridge;
    }
    if (CholeskyFactor(&l)) {
      return CholeskySolveFactored(l, b);
    }
    ridge = (ridge == 0.0) ? 1e-12 * diag_max : ridge * 100.0;
  }
  return Status::NotConverged("Cholesky failed even with regularization");
}

}  // namespace polydab
