#ifndef POLYDAB_COMMON_RNG_H_
#define POLYDAB_COMMON_RNG_H_

#include <cstdint>
#include <random>

/// \file rng.h
/// Seedable random-number utilities shared by workload generation and the
/// simulator's delay models. All experiments are deterministic given a seed.

namespace polydab {

/// \brief Seedable random source with the distributions the paper's
/// evaluation methodology needs (uniform weights, Pareto delays, Gaussian
/// steps for random walks / GBM traces).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// \brief Heavy-tailed Pareto draw with given shape and *mean*.
  ///
  /// The paper derives communication and computation delays from heavy
  /// tailed Pareto distributions parameterized by their mean (§V-A). For
  /// shape a > 1 and scale x_m, the Pareto mean is a·x_m/(a−1); we invert
  /// that so callers specify the mean directly. Shape defaults to 2.5,
  /// heavy-tailed but with finite variance.
  double Pareto(double mean, double shape = 2.5);

  /// Access to the underlying engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child generator (for per-entity streams).
  Rng Fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace polydab

#endif  // POLYDAB_COMMON_RNG_H_
