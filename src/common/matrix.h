#ifndef POLYDAB_COMMON_MATRIX_H_
#define POLYDAB_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

/// \file matrix.h
/// Small dense linear-algebra kernel used by the geometric-program solver
/// (src/gp). The Newton systems there are modest (tens to a few hundred
/// variables), so a straightforward row-major dense implementation with a
/// regularized Cholesky factorization is both sufficient and dependable.

namespace polydab {

using Vector = std::vector<double>;

/// Euclidean inner product. Sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm(const Vector& v);

/// In-place a += s * b.
void Axpy(double s, const Vector& b, Vector* a);

/// \brief Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Reshape to rows x cols with every entry reset to zero. Reuses the
  /// existing allocation when capacity suffices, which lets the GP
  /// solver's workspace (gp/solver_internal.h) rebuild its Newton system
  /// every iteration without touching the heap.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  double& operator()(size_t r, size_t c) {
    POLYDAB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    POLYDAB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// y = M x.
  Vector Multiply(const Vector& x) const;

  /// y = Mᵀ x.
  Vector MultiplyTranspose(const Vector& x) const;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// \brief Solve the symmetric positive-definite system A x = b by Cholesky
/// factorization.
///
/// If A is only positive semi-definite (or slightly indefinite from
/// round-off, common near the boundary of a barrier subproblem), a Tikhonov
/// ridge `reg * I` is added and the factorization retried with a growing
/// ridge, up to a bounded number of attempts. Returns kNotConverged if no
/// ridge in range produces a valid factorization.
Result<Vector> SolveCholesky(const Matrix& a, const Vector& b,
                             double reg = 0.0);

}  // namespace polydab

#endif  // POLYDAB_COMMON_MATRIX_H_
