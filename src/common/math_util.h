#ifndef POLYDAB_COMMON_MATH_UTIL_H_
#define POLYDAB_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <vector>

/// \file math_util.h
/// Numerically careful scalar helpers used across the GP solver and the
/// DAB-assignment layer.

namespace polydab {

/// \brief log(sum_i exp(z_i)) computed with the max-shift trick so that
/// large exponents do not overflow. Returns -inf for an empty input.
inline double LogSumExp(const std::vector<double>& z) {
  if (z.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(z.begin(), z.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double zi : z) s += std::exp(zi - m);
  return m + std::log(s);
}

/// Clamp helper that also tolerates lo > hi by returning lo.
inline double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(x, hi));
}

/// True when |a - b| <= tol * max(1, |a|, |b|).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

}  // namespace polydab

#endif  // POLYDAB_COMMON_MATH_UTIL_H_
