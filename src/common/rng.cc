#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace polydab {

double Rng::Pareto(double mean, double shape) {
  POLYDAB_CHECK(mean > 0.0);
  POLYDAB_CHECK(shape > 1.0);
  const double scale = mean * (shape - 1.0) / shape;
  // Inverse-CDF sampling: X = x_m / U^{1/a}, U ~ Uniform(0,1].
  double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  if (u <= 0.0) u = 1e-12;
  return scale / std::pow(u, 1.0 / shape);
}

}  // namespace polydab
