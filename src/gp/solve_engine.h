#ifndef POLYDAB_GP_SOLVE_ENGINE_H_
#define POLYDAB_GP_SOLVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "gp/gp_solver.h"
#include "gp/posynomial.h"
#include "gp/solver_internal.h"
#include "obs/metrics.h"

/// \file solve_engine.h
/// Batched, memoizing solve server for the recompute hot path
/// (docs/SOLVER.md). One refresh service produces many small per-EQI-
/// component GPs; the engine exploits two regularities the per-call
/// `SolveGp` entry point cannot see:
///
///  1. **Shape sharing.** Programs are grouped by shape signature
///     (num_vars + constraint/term sparsity pattern). Each signature owns
///     pooled `ConvexGp` skeletons in SoA layout plus a solver workspace
///     (Newton system, softmax scratch), so a group of same-shape
///     programs is solved with a single set of buffers and an incremental
///     coefficient refill — a term whose coefficient bits did not change
///     since the previous program (the usual case when a single item
///     escaped) keeps its cached logarithm.
///
///  2. **Memoization.** Recent solutions live in an LRU keyed by a 64-bit
///     digest of the program, warm-start and solver-option bits. A hit is
///     only declared after verifying bitwise equality of all inputs, so
///     the returned solution is bit-for-bit what re-running the
///     deterministic solver would produce. EQI-equivalent queries across
///     users produce bitwise-identical programs, which is where the hit
///     rate comes from.
///
/// Both levers preserve byte-identity of every result, metric and trace
/// against the unbatched oracle (`tests/solve_engine_diff_test.cc`); on a
/// cache hit the engine replays the solve's `gp.solver.*` stats so the
/// telemetry totals match an engine-less run exactly. The engine is
/// thread-safe: `rt::LanePool` workers share one instance, with the
/// actual Newton work running outside the lock.

namespace polydab::gp {

class SolveEngine {
 public:
  struct Options {
    /// LRU memo capacity in entries; 0 disables memoization (the engine
    /// then still shares structure skeletons and workspaces).
    int cache_entries = 0;
    /// Optional sink for the `gp.engine.*` instruments: cache hit/miss
    /// counters, batch sizes, warm vs cold Newton-iteration histograms,
    /// structure reuse and skipped-log counters. Not owned.
    obs::MetricRegistry* registry = nullptr;
  };

  explicit SolveEngine(const Options& options);
  ~SolveEngine();

  SolveEngine(const SolveEngine&) = delete;
  SolveEngine& operator=(const SolveEngine&) = delete;

  /// Drop-in replacement for `SolveGp` (which delegates here when
  /// `SolverOptions::engine` is set): bit-identical result, identical
  /// `gp.solver.*` instrument totals on `options.registry`.
  Result<GpSolution> Solve(const GpProblem& problem,
                           const SolverOptions& options,
                           const Vector* warm_start);

  struct BatchItem {
    const GpProblem* problem = nullptr;
    const Vector* warm_start = nullptr;  ///< may be null
  };

  /// Solve a batch, grouping items by shape signature so each group runs
  /// through one skeleton + workspace with incremental coefficient
  /// refills. Results are returned in input order and each is
  /// bit-identical to a standalone `Solve` of that item.
  std::vector<Result<GpSolution>> SolveBatch(
      const std::vector<BatchItem>& items, const SolverOptions& options);

  /// Telemetry snapshots (also mirrored to `gp.engine.*` instruments).
  /// Deterministic for serial callers; under concurrent callers the
  /// hit/miss split depends on scheduling even though every returned
  /// solution does not.
  int64_t cache_hits() const { return hits_.load(); }
  int64_t cache_misses() const { return misses_.load(); }
  int64_t batches() const { return batches_.load(); }
  int64_t structure_reuses() const { return structure_reuses_.load(); }
  int64_t coef_log_skips() const { return coef_log_skips_.load(); }

 private:
  struct StructEntry;
  struct CacheEntry;

  StructEntry* AcquireStruct(uint64_t signature);
  void ReleaseStruct(StructEntry* entry);

  /// The single-solve path shared by Solve and SolveBatch. `entry` may be
  /// null (acquired internally) or a caller-held signature skeleton.
  Result<GpSolution> SolveOne(const GpProblem& problem,
                              const SolverOptions& options,
                              const Vector* warm_start, StructEntry* entry);

  Options opts_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> structure_reuses_{0};
  std::atomic<int64_t> coef_log_skips_{0};

  std::mutex pool_mutex_;
  std::unordered_map<uint64_t, std::vector<std::unique_ptr<StructEntry>>>
      pool_;

  std::mutex cache_mutex_;
  std::list<CacheEntry> lru_;  ///< front = most recent
  std::unordered_multimap<uint64_t, std::list<CacheEntry>::iterator>
      cache_index_;
};

}  // namespace polydab::gp

#endif  // POLYDAB_GP_SOLVE_ENGINE_H_
