#include "gp/gp_solver.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"
#include "gp/solve_engine.h"
#include "gp/solver_internal.h"

namespace polydab::gp {

namespace internal {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Largest allowed Newton step, per coordinate, in log space (= a factor of
/// e^5 ≈ 148 on the underlying positive variable). Near-singular Newton
/// systems (e.g. a phase-I subproblem that is flat along a diagonal
/// direction when every constraint term has the same total degree) can
/// otherwise produce astronomically long steps that strand the iterate.
constexpr double kMaxStepInf = 5.0;

/// A warm point must clear every constraint by at least this much (in log
/// space) to be trusted. Exactly-on-boundary and epsilon-inside points are
/// "strictly feasible" to the raw probe, but the barrier Hessian carries a
/// 1/Fi² factor that overflows there and the first centering stage
/// diverges or dies in the Cholesky factorization; such points go through
/// phase I instead, which pushes them a genuine margin inside.
constexpr double kWarmFeasMargin = 1e-12;

double InfNorm(const Vector& d) {
  double mx = 0.0;
  for (double di : d) mx = std::max(mx, std::fabs(di));
  return mx;
}

/// Scale \p d so its infinity norm is at most kMaxStepInf. Returns the
/// scaling factor applied (1.0 when no clamping was needed).
double ClampStep(Vector* d) {
  const double mx = InfNorm(*d);
  if (mx <= kMaxStepInf) return 1.0;
  const double scale = kMaxStepInf / mx;
  for (double& di : *d) di *= scale;
  return scale;
}

void BuildSoa(const Posynomial& p, SoaPosy* sp) {
  sp->logc.clear();
  sp->coef.clear();
  sp->term_off.clear();
  sp->exp_var.clear();
  sp->exp_coef.clear();
  sp->term_off.push_back(0);
  for (const GpTerm& t : p.terms()) {
    sp->coef.push_back(t.coef);
    sp->logc.push_back(std::log(t.coef));
    for (const auto& [var, exp] : t.exponents) {
      sp->exp_var.push_back(var);
      sp->exp_coef.push_back(exp);
    }
    sp->term_off.push_back(static_cast<int>(sp->exp_var.size()));
  }
}

/// Value, gradient, and (optionally) Hessian of one log-posynomial,
/// accumulated into the given outputs with weight `w_grad` for the
/// gradient and `w_hess`, `w_outer` for the two Hessian pieces:
///   grad += w_grad * g
///   hess += w_hess * (Σ w_k a_k a_kᵀ − g gᵀ) + w_outer * g gᵀ
/// where g = Σ w_k a_k and w_k are the softmax weights. Scratch lives in
/// \p ws (z, w, g), all fully overwritten.
double Accumulate(const SoaPosy& p, const Vector& y, double w_grad,
                  double w_hess, double w_outer, Vector* grad, Matrix* hess,
                  Vector* g_out, Workspace* ws) {
  const size_t n = y.size();
  const int nt = p.num_terms();
  ws->z.resize(static_cast<size_t>(nt));
  for (int k = 0; k < nt; ++k) {
    double s = p.logc[static_cast<size_t>(k)];
    for (int idx = p.term_off[static_cast<size_t>(k)];
         idx < p.term_off[static_cast<size_t>(k) + 1]; ++idx) {
      s += p.exp_coef[static_cast<size_t>(idx)] *
           y[static_cast<size_t>(p.exp_var[static_cast<size_t>(idx)])];
    }
    ws->z[static_cast<size_t>(k)] = s;
  }
  const double f = LogSumExp(ws->z);
  ws->g.assign(n, 0.0);
  ws->w.resize(static_cast<size_t>(nt));
  for (int k = 0; k < nt; ++k) {
    const double wk = std::exp(ws->z[static_cast<size_t>(k)] - f);
    ws->w[static_cast<size_t>(k)] = wk;
    for (int idx = p.term_off[static_cast<size_t>(k)];
         idx < p.term_off[static_cast<size_t>(k) + 1]; ++idx) {
      ws->g[static_cast<size_t>(p.exp_var[static_cast<size_t>(idx)])] +=
          wk * p.exp_coef[static_cast<size_t>(idx)];
    }
  }
  if (grad != nullptr && w_grad != 0.0) {
    for (size_t j = 0; j < n; ++j) (*grad)[j] += w_grad * ws->g[j];
  }
  if (hess != nullptr) {
    // Σ w_k a_k a_kᵀ piece (sparse outer products per term).
    if (w_hess != 0.0) {
      for (int k = 0; k < nt; ++k) {
        const double wk = ws->w[static_cast<size_t>(k)] * w_hess;
        const int lo = p.term_off[static_cast<size_t>(k)];
        const int hi = p.term_off[static_cast<size_t>(k) + 1];
        for (int ii = lo; ii < hi; ++ii) {
          const size_t vi = static_cast<size_t>(p.exp_var[static_cast<size_t>(ii)]);
          const double ei = p.exp_coef[static_cast<size_t>(ii)];
          for (int jj = lo; jj < hi; ++jj) {
            (*hess)(vi, static_cast<size_t>(p.exp_var[static_cast<size_t>(jj)])) +=
                wk * ei * p.exp_coef[static_cast<size_t>(jj)];
          }
        }
      }
    }
    // (w_outer - w_hess) * g gᵀ piece (dense but only over support).
    const double wo = w_outer - w_hess;
    if (wo != 0.0) {
      for (size_t i = 0; i < n; ++i) {
        if (ws->g[i] == 0.0) continue;
        for (size_t j = 0; j < n; ++j) {
          if (ws->g[j] == 0.0) continue;
          (*hess)(i, j) += wo * ws->g[i] * ws->g[j];
        }
      }
    }
  }
  if (g_out != nullptr) g_out->assign(ws->g.begin(), ws->g.end());
  return f;
}

/// Barrier value phi(y) = t*F0(y) - Σ log(-Fi(y)); +inf when infeasible.
double BarrierValue(const ConvexGp& cg, const Vector& y, double t,
                    Workspace* ws) {
  double phi = t * cg.objective.Value(y, &ws->z);
  for (const SoaPosy& c : cg.constraints) {
    const double fi = c.Value(y, &ws->z);
    if (fi >= 0.0) return kInf;
    phi -= std::log(-fi);
  }
  return phi;
}

/// Damped-Newton minimization of the barrier objective at fixed t.
/// Returns the number of Newton iterations, or an error.
///
/// In `damped` mode — the second attempt at a stage the plain method
/// could not finish — a step that would need the hard infinity-norm clamp
/// is instead recomputed with a growing Tikhonov ridge until it fits the
/// trust region on its own. The raw clamp rescales the Newton direction
/// of a near-singular system, which preserves its (useless) direction and
/// lets the iterate oscillate across the flat valley, burning the whole
/// `max_newton_per_stage` budget; the ridge bends the direction toward
/// steepest descent, which converges. Damping is never applied on the
/// first attempt so well-conditioned programs keep bit-identical iterates.
Result<int> CenterStep(const ConvexGp& cg, double t, const SolverOptions& opt,
                       Vector* y, SolveStats* stats, Workspace* ws,
                       bool damped) {
  const size_t n = y->size();
  // `iter` counts completed Newton steps (returned to the caller and fed
  // to telemetry); `counted` is what the stage budget is charged for. A
  // clamped step is trust-region *travel*, not Newton refinement — its
  // length is fixed by kMaxStepInf, so a distant optimum would otherwise
  // eat the whole `max_newton_per_stage` budget in transit and fail
  // programs the method handles fine. Travel is budget-free; the hard cap
  // bounds the pathological (oscillating near-singular) case, which the
  // damped retry then rescues.
  int iter = 0;
  int counted = 0;
  const int hard_cap = 10 * opt.max_newton_per_stage;
  while (counted < opt.max_newton_per_stage && iter < hard_cap) {
    ws->grad.assign(n, 0.0);
    ws->hess.Resize(n, n);
    Accumulate(cg.objective, *y, t, t, 0.0, &ws->grad, &ws->hess, nullptr,
               ws);
    for (const SoaPosy& c : cg.constraints) {
      // First pass for the value only (cheap); needed for the weights.
      const double fi = c.Value(*y, &ws->z);
      if (fi >= 0.0) {
        return Status::Internal("barrier stage entered infeasible point");
      }
      const double inv = 1.0 / (-fi);
      // d/dy [-log(-Fi)] = grad Fi / (-Fi);
      // d2    = Hess Fi/(-Fi) + grad grad^T / Fi^2.
      Accumulate(c, *y, inv, inv, 1.0 / (fi * fi), &ws->grad, &ws->hess,
                 nullptr, ws);
    }

    auto step = SolveCholesky(ws->hess, ws->grad);
    if (!step.ok()) return step.status();
    Vector d = std::move(step).value();
    for (double& di : d) di = -di;

    double lambda2 = -Dot(ws->grad, d);
    // The barrier objective scales with t, and the suboptimality implied by
    // a Newton decrement lambda is ~lambda^2/t, so the stopping threshold
    // must scale with t as well or centering stalls at machine precision.
    if (lambda2 / 2.0 < opt.inner_tol * std::max(1.0, t)) return iter;
    double scale = 1.0;
    if (!damped) {
      scale = ClampStep(&d);
      lambda2 *= scale;
    } else if (InfNorm(d) > kMaxStepInf) {
      double diag_max = 0.0;
      for (size_t i = 0; i < n; ++i) {
        diag_max = std::max(diag_max, ws->hess(i, i));
      }
      double reg = std::max(1e-12, 1e-10 * diag_max);
      bool fits = false;
      for (int attempt = 0; attempt < 40 && !fits; ++attempt) {
        auto dstep = SolveCholesky(ws->hess, ws->grad, reg);
        if (dstep.ok()) {
          Vector d2 = std::move(dstep).value();
          for (double& di : d2) di = -di;
          if (InfNorm(d2) <= kMaxStepInf) {
            d = std::move(d2);
            fits = true;
          }
        }
        reg *= 10.0;
      }
      if (!fits) {
        scale = ClampStep(&d);
        lambda2 *= scale;
      } else {
        lambda2 = -Dot(ws->grad, d);
        if (lambda2 / 2.0 < opt.inner_tol * std::max(1.0, t)) return iter;
      }
    }

    // Backtracking line search on the true barrier value.
    const double phi0 = BarrierValue(cg, *y, t, ws);
    double alpha = 1.0;
    ws->y_new.resize(n);
    for (int ls = 0; ls < 60; ++ls) {
      for (size_t j = 0; j < n; ++j) ws->y_new[j] = (*y)[j] + alpha * d[j];
      const double phi1 = BarrierValue(cg, ws->y_new, t, ws);
      if (phi1 <= phi0 - 0.25 * alpha * lambda2) break;
      alpha *= 0.5;
      ++stats->line_search_backtracks;
      if (alpha < 1e-14) {
        // No descent possible: already at numerical optimum for this t.
        return iter;
      }
    }
    *y = ws->y_new;
    ++stats->newton_iterations;
    ++iter;
    if (scale == 1.0) ++counted;  // clamped travel steps are budget-free
  }
  return Status::NotConverged("Newton centering exceeded iteration limit");
}

/// Phase I: find strictly feasible y, minimizing the max constraint value.
/// Works on the augmented variable vector (y, s) with constraints
/// Fi(y) - s <= 0, driving s below zero.
Result<Vector> PhaseOne(const ConvexGp& cg, const SolverOptions& opt,
                        const Vector& y0, SolveStats* stats, Workspace* ws) {
  stats->phase1 = true;
  const size_t n = static_cast<size_t>(cg.num_vars);
  Vector y = y0;
  double s = 0.0;
  for (const SoaPosy& c : cg.constraints) {
    s = std::max(s, c.Value(y, &ws->z));
  }
  if (s < -1e-6) return y;  // already strictly feasible
  s += 1.0;

  double t = 1.0;
  const double m = static_cast<double>(cg.constraints.size());
  for (int outer = 0; outer < opt.max_outer; ++outer) {
    // Damped Newton on  t*s - Σ log(s - Fi(y)).
    for (int iter = 0; iter < opt.max_newton_per_stage; ++iter) {
      ws->grad.assign(n + 1, 0.0);
      ws->hess.Resize(n + 1, n + 1);
      ws->grad[n] = t;
      bool bail = false;
      for (const SoaPosy& c : cg.constraints) {
        const double fi =
            Accumulate(c, y, 0.0, 0.0, 0.0, nullptr, nullptr, &ws->gi, ws);
        const double gap = s - fi;
        if (gap <= 0.0) {
          bail = true;
          break;
        }
        const double inv = 1.0 / gap;
        // Accumulate again with Hessian weights for the y-block:
        // H_i/gap + g_i g_iᵀ/gap².
        ws->hblock.Resize(n, n);
        Accumulate(c, y, 0.0, inv, inv * inv, nullptr, &ws->hblock, nullptr,
                   ws);
        for (size_t i = 0; i < n; ++i) {
          ws->grad[i] += inv * ws->gi[i];
          for (size_t j = 0; j < n; ++j) {
            ws->hess(i, j) += ws->hblock(i, j);
          }
          ws->hess(i, n) += -inv * inv * ws->gi[i];
          ws->hess(n, i) += -inv * inv * ws->gi[i];
        }
        ws->grad[n] += -inv;
        ws->hess(n, n) += inv * inv;
      }
      if (bail) break;

      auto step = SolveCholesky(ws->hess, ws->grad);
      if (!step.ok()) return step.status();
      Vector d = std::move(step).value();
      for (double& di : d) di = -di;
      double lambda2 = -Dot(ws->grad, d);
      if (lambda2 / 2.0 < opt.inner_tol) break;
      lambda2 *= ClampStep(&d);

      // Line search maintaining s - Fi(y) > 0. Phase I only needs *a*
      // strictly feasible point, so accept any trial that achieves one.
      double val0 = t * s;
      for (const SoaPosy& c : cg.constraints) {
        val0 -= std::log(s - c.Value(y, &ws->z));
      }
      double alpha = 1.0;
      ws->y_try.resize(n);
      for (int ls = 0; ls < 60; ++ls) {
        for (size_t j = 0; j < n; ++j) ws->y_try[j] = y[j] + alpha * d[j];
        const double s_try = s + alpha * d[n];
        bool feas = true;
        double max_f = -kInf;
        double val = t * s_try;
        for (const SoaPosy& c : cg.constraints) {
          const double fi = c.Value(ws->y_try, &ws->z);
          max_f = std::max(max_f, fi);
          const double gap = s_try - fi;
          if (gap <= 0.0) {
            feas = false;
            break;
          }
          val -= std::log(gap);
        }
        if (feas && max_f < -1e-3) return ws->y_try;  // strictly feasible
        if (feas && val <= val0 - 0.25 * alpha * lambda2) break;
        alpha *= 0.5;
        ++stats->line_search_backtracks;
        if (alpha < 1e-14) break;
      }
      if (alpha < 1e-14) break;
      for (size_t j = 0; j < n; ++j) y[j] += alpha * d[j];
      s += alpha * d[n];
      ++stats->newton_iterations;
      if (s < -1e-3) return y;  // strictly feasible, done early
    }
    if (s < -1e-6) return y;
    if (m / t < opt.duality_tol) break;
    t *= opt.barrier_mu;
  }
  if (s < 0.0) return y;
  return Status::Infeasible("phase I ended with max constraint value " +
                            std::to_string(s));
}

/// FNV-1a accumulator over raw 64-bit words.
struct Fnv64 {
  uint64_t h = 1469598103934665603ull;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void MixInt(int v) { Mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void MixDouble(double v) { Mix(std::bit_cast<uint64_t>(v)); }
};

void MixStructure(const Posynomial& p, Fnv64* f) {
  f->MixInt(static_cast<int>(p.terms().size()));
  for (const GpTerm& t : p.terms()) {
    f->MixInt(static_cast<int>(t.exponents.size()));
    for (const auto& [var, exp] : t.exponents) {
      f->MixInt(var);
      f->MixDouble(exp);
    }
  }
}

bool SoaStructureMatches(const SoaPosy& sp, const Posynomial& p) {
  if (sp.num_terms() != static_cast<int>(p.terms().size())) return false;
  size_t flat = 0;
  for (size_t k = 0; k < p.terms().size(); ++k) {
    const auto& exps = p.terms()[k].exponents;
    if (sp.term_off[k + 1] - sp.term_off[k] !=
        static_cast<int>(exps.size())) {
      return false;
    }
    for (const auto& [var, exp] : exps) {
      if (sp.exp_var[flat] != var ||
          std::bit_cast<uint64_t>(sp.exp_coef[flat]) !=
              std::bit_cast<uint64_t>(exp)) {
        return false;
      }
      ++flat;
    }
  }
  return true;
}

int64_t RefillSoa(const Posynomial& p, SoaPosy* sp) {
  int64_t skipped = 0;
  for (size_t k = 0; k < p.terms().size(); ++k) {
    const double c = p.terms()[k].coef;
    if (std::bit_cast<uint64_t>(sp->coef[k]) == std::bit_cast<uint64_t>(c)) {
      ++skipped;  // identical bits: the cached log is exact
      continue;
    }
    sp->coef[k] = c;
    sp->logc[k] = std::log(c);
  }
  return skipped;
}

}  // namespace

double SoaPosy::Value(const Vector& y, Vector* z) const {
  const int nt = num_terms();
  z->resize(static_cast<size_t>(nt));
  for (int k = 0; k < nt; ++k) {
    double s = logc[static_cast<size_t>(k)];
    for (int idx = term_off[static_cast<size_t>(k)];
         idx < term_off[static_cast<size_t>(k) + 1]; ++idx) {
      s += exp_coef[static_cast<size_t>(idx)] *
           y[static_cast<size_t>(exp_var[static_cast<size_t>(idx)])];
    }
    (*z)[static_cast<size_t>(k)] = s;
  }
  return LogSumExp(*z);
}

Status ValidateGpProblem(const GpProblem& problem) {
  if (problem.num_vars <= 0) {
    return Status::InvalidArgument("GP has no variables");
  }
  if (problem.objective.empty()) {
    return Status::InvalidArgument("GP has an empty objective");
  }
  int mx = problem.objective.MaxVarIndex();
  for (const Posynomial& c : problem.constraints) {
    mx = std::max(mx, c.MaxVarIndex());
  }
  if (mx >= problem.num_vars) {
    return Status::InvalidArgument(
        "posynomial references variable index beyond num_vars");
  }
  return Status::OK();
}

void BuildConvexGp(const GpProblem& problem, ConvexGp* cg) {
  cg->num_vars = problem.num_vars;
  BuildSoa(problem.objective, &cg->objective);
  cg->constraints.clear();
  cg->constraints.reserve(problem.constraints.size());
  for (const Posynomial& c : problem.constraints) {
    if (c.empty()) continue;  // vacuous "0 <= 1"
    cg->constraints.emplace_back();
    BuildSoa(c, &cg->constraints.back());
  }
}

bool StructureMatches(const ConvexGp& cg, const GpProblem& problem) {
  if (cg.num_vars != problem.num_vars) return false;
  if (!SoaStructureMatches(cg.objective, problem.objective)) return false;
  size_t ci = 0;
  for (const Posynomial& c : problem.constraints) {
    if (c.empty()) continue;
    if (ci >= cg.constraints.size() ||
        !SoaStructureMatches(cg.constraints[ci], c)) {
      return false;
    }
    ++ci;
  }
  return ci == cg.constraints.size();
}

int64_t RefillCoefficients(const GpProblem& problem, ConvexGp* cg) {
  int64_t skipped = RefillSoa(problem.objective, &cg->objective);
  size_t ci = 0;
  for (const Posynomial& c : problem.constraints) {
    if (c.empty()) continue;
    skipped += RefillSoa(c, &cg->constraints[ci]);
    ++ci;
  }
  return skipped;
}

uint64_t ShapeSignature(const GpProblem& problem) {
  Fnv64 f;
  f.MixInt(problem.num_vars);
  MixStructure(problem.objective, &f);
  for (const Posynomial& c : problem.constraints) {
    if (c.empty()) continue;
    f.Mix(0x5eed5eed5eed5eedull);  // posynomial separator
    MixStructure(c, &f);
  }
  return f.h;
}

Result<GpSolution> SolveConvexGp(const GpProblem& problem, const ConvexGp& cg,
                                 const SolverOptions& options,
                                 const Vector* warm_start, SolveStats* stats,
                                 Workspace* ws) {
  const size_t n = static_cast<size_t>(cg.num_vars);
  Vector y(n, 0.0);
  if (warm_start != nullptr) {
    POLYDAB_CHECK(warm_start->size() == n);
    for (size_t j = 0; j < n; ++j) {
      POLYDAB_CHECK((*warm_start)[j] > 0.0);
      y[j] = std::log((*warm_start)[j]);
    }
  }

  const double m = std::max<size_t>(cg.constraints.size(), 1);

  // Full barrier schedule from the given starting weight. Returns the
  // Newton-iteration count of this descent alone (so a cold restart after
  // a failed warm attempt reports only the work of the solve that
  // actually produced the answer). A stage that exhausts its Newton
  // budget is retried once with Levenberg damping (see CenterStep) before
  // the whole solve is declared failed.
  auto run_barrier = [&](Vector* yy, double t) -> Result<int> {
    int newton_total = 0;
    for (int outer = 0; outer < options.max_outer; ++outer) {
      Vector y_stage = *yy;
      Result<int> iters = CenterStep(cg, t, options, yy, stats, ws, false);
      if (!iters.ok() &&
          iters.status().code() == StatusCode::kNotConverged) {
        *yy = y_stage;
        ++stats->damped_stages;
        iters = CenterStep(cg, t, options, yy, stats, ws, true);
      }
      if (!iters.ok()) return iters.status();
      newton_total += *iters;
      if (m / t < options.duality_tol) break;
      t *= options.barrier_mu;
    }
    return newton_total;
  };

  auto finish = [&](const Vector& yy, int newton_total) {
    GpSolution sol;
    sol.x.resize(n);
    for (size_t j = 0; j < n; ++j) sol.x[j] = std::exp(yy[j]);
    sol.objective = problem.objective.Evaluate(sol.x);
    sol.newton_iterations = newton_total;
    return sol;
  };

  if (!cg.constraints.empty()) {
    // Any comfortably interior point works for the barrier; a previous
    // solve's optimum for slightly moved data usually is one.
    bool warm_feasible = warm_start != nullptr;
    if (warm_feasible) {
      for (const SoaPosy& c : cg.constraints) {
        if (c.Value(y, &ws->z) >= -kWarmFeasMargin) {
          warm_feasible = false;
          break;
        }
      }
    }
    if (warm_feasible) {
      // A strictly feasible warm start (typically last solve's optimum for
      // slightly moved data) is near the end of the central path already;
      // start the barrier schedule much closer to its final value.
      stats->warm_feasible = true;
      const double t_warm =
          std::max(options.t0, m / options.duality_tol * 1e-4);
      Result<int> nt = run_barrier(&y, t_warm);
      if (nt.ok()) return finish(y, *nt);
      // The warm-started descent failed. Retry the whole solve cold — from
      // the origin through phase I, exactly as if no warm start had been
      // given — and reset the per-attempt stats so the telemetry reports
      // this as the phase-I solve it actually was, not a warm one.
      stats->warm_feasible = false;
      stats->cold_restart = true;
      std::fill(y.begin(), y.end(), 0.0);
      POLYDAB_ASSIGN_OR_RETURN(y, PhaseOne(cg, options, y, stats, ws));
      POLYDAB_ASSIGN_OR_RETURN(int nt2, run_barrier(&y, options.t0));
      return finish(y, nt2);
    }
    POLYDAB_ASSIGN_OR_RETURN(y, PhaseOne(cg, options, y, stats, ws));
  }

  POLYDAB_ASSIGN_OR_RETURN(int nt, run_barrier(&y, options.t0));
  return finish(y, nt);
}

Result<GpSolution> SolveGpUnrouted(const GpProblem& problem,
                                   const SolverOptions& options,
                                   const Vector* warm_start,
                                   SolveStats* stats) {
  Status st = ValidateGpProblem(problem);
  if (!st.ok()) return st;
  ConvexGp cg;
  BuildConvexGp(problem, &cg);
  Workspace ws;
  return SolveConvexGp(problem, cg, options, warm_start, stats, &ws);
}

void RecordSolveInstruments(obs::MetricRegistry* registry,
                            const SolveStats& stats, bool warm_started,
                            bool ok) {
  if (registry == nullptr) return;
  obs::MetricRegistry& reg = *registry;
  reg.GetCounter("gp.solver.solves")->Inc();
  reg.GetHistogram("gp.solver.newton_iterations")
      ->Record(static_cast<double>(stats.newton_iterations));
  reg.GetCounter("gp.solver.line_search_backtracks")
      ->Add(stats.line_search_backtracks);
  if (stats.phase1) reg.GetCounter("gp.solver.phase1_solves")->Inc();
  if (warm_started) {
    reg.GetCounter("gp.solver.warm_started_solves")->Inc();
    if (stats.warm_feasible) {
      reg.GetCounter("gp.solver.warm_start_feasible")->Inc();
    }
  }
  // Pathological-path counters: materialized only when the path was
  // taken, so well-behaved runs publish exactly the historical name set.
  if (stats.cold_restart) reg.GetCounter("gp.solver.cold_restarts")->Inc();
  if (stats.damped_stages > 0) {
    reg.GetCounter("gp.solver.damped_stages")->Add(stats.damped_stages);
  }
  reg.GetCounter(ok ? "gp.solver.converged" : "gp.solver.failures")->Inc();
}

}  // namespace internal

Result<GpSolution> SolveGp(const GpProblem& problem,
                           const SolverOptions& options,
                           const Vector* warm_start) {
  if (options.engine != nullptr) {
    return options.engine->Solve(problem, options, warm_start);
  }
  internal::SolveStats stats;
  if (options.registry == nullptr) {
    return internal::SolveGpUnrouted(problem, options, warm_start, &stats);
  }
  obs::MetricRegistry& reg = *options.registry;
  obs::ScopedTimer timer(reg.GetHistogram("gp.solver.solve_seconds"));
  Result<GpSolution> result =
      internal::SolveGpUnrouted(problem, options, warm_start, &stats);
  timer.Stop();
  internal::RecordSolveInstruments(&reg, stats, warm_start != nullptr,
                                   result.ok());
  return result;
}

}  // namespace polydab::gp
