#include "gp/gp_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace polydab::gp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Largest allowed Newton step, per coordinate, in log space (= a factor of
/// e^5 ≈ 148 on the underlying positive variable). Near-singular Newton
/// systems (e.g. a phase-I subproblem that is flat along a diagonal
/// direction when every constraint term has the same total degree) can
/// otherwise produce astronomically long steps that strand the iterate.
constexpr double kMaxStepInf = 5.0;

/// Scale \p d so its infinity norm is at most kMaxStepInf. Returns the
/// scaling factor applied (1.0 when no clamping was needed).
double ClampStep(Vector* d) {
  double mx = 0.0;
  for (double di : *d) mx = std::max(mx, std::fabs(di));
  if (mx <= kMaxStepInf) return 1.0;
  const double scale = kMaxStepInf / mx;
  for (double& di : *d) di *= scale;
  return scale;
}

/// One posynomial in log space: F(y) = log Σ_k exp(logc_k + a_k·y).
struct LogPosy {
  struct Term {
    double logc;
    std::vector<std::pair<int, double>> exps;
  };
  std::vector<Term> terms;

  static LogPosy From(const Posynomial& p) {
    LogPosy lp;
    lp.terms.reserve(p.terms().size());
    for (const GpTerm& t : p.terms()) {
      lp.terms.push_back({std::log(t.coef), t.exponents});
    }
    return lp;
  }

  double Value(const Vector& y) const {
    std::vector<double> z(terms.size());
    for (size_t k = 0; k < terms.size(); ++k) {
      double s = terms[k].logc;
      for (const auto& [var, exp] : terms[k].exps) s += exp * y[var];
      z[k] = s;
    }
    return LogSumExp(z);
  }

  /// Value, gradient, and (optionally) Hessian accumulated into the given
  /// outputs with weight `w_grad` for the gradient and `w_hess`,
  /// `w_outer` for the two Hessian pieces:
  ///   grad += w_grad * g
  ///   hess += w_hess * (Σ w_k a_k a_kᵀ − g gᵀ) + w_outer * g gᵀ
  /// where g = Σ w_k a_k and w_k are the softmax weights.
  double Accumulate(const Vector& y, double w_grad, double w_hess,
                    double w_outer, Vector* grad, Matrix* hess,
                    Vector* g_out) const {
    const size_t n = y.size();
    std::vector<double> z(terms.size());
    for (size_t k = 0; k < terms.size(); ++k) {
      double s = terms[k].logc;
      for (const auto& [var, exp] : terms[k].exps) s += exp * y[var];
      z[k] = s;
    }
    const double f = LogSumExp(z);
    Vector g(n, 0.0);
    std::vector<double> w(terms.size());
    for (size_t k = 0; k < terms.size(); ++k) {
      w[k] = std::exp(z[k] - f);
      for (const auto& [var, exp] : terms[k].exps) g[var] += w[k] * exp;
    }
    if (grad != nullptr && w_grad != 0.0) {
      for (size_t j = 0; j < n; ++j) (*grad)[j] += w_grad * g[j];
    }
    if (hess != nullptr) {
      // Σ w_k a_k a_kᵀ piece (sparse outer products per term).
      if (w_hess != 0.0) {
        for (size_t k = 0; k < terms.size(); ++k) {
          const auto& ex = terms[k].exps;
          const double wk = w[k] * w_hess;
          for (const auto& [vi, ei] : ex) {
            for (const auto& [vj, ej] : ex) {
              (*hess)(vi, vj) += wk * ei * ej;
            }
          }
        }
      }
      // (w_outer - w_hess) * g gᵀ piece (dense but only over support).
      const double wo = w_outer - w_hess;
      if (wo != 0.0) {
        for (size_t i = 0; i < n; ++i) {
          if (g[i] == 0.0) continue;
          for (size_t j = 0; j < n; ++j) {
            if (g[j] == 0.0) continue;
            (*hess)(i, j) += wo * g[i] * g[j];
          }
        }
      }
    }
    if (g_out != nullptr) *g_out = std::move(g);
    return f;
  }
};

struct ConvexGp {
  LogPosy objective;
  std::vector<LogPosy> constraints;
  int num_vars = 0;
};

/// Per-solve work counters, always accumulated (trivially cheap ints) and
/// flushed to the telemetry registry only when one is configured.
struct SolveStats {
  int newton_iterations = 0;
  int line_search_backtracks = 0;
  bool phase1 = false;
  bool warm_feasible = false;
};

/// Barrier value phi(y) = t*F0(y) - Σ log(-Fi(y)); +inf when infeasible.
double BarrierValue(const ConvexGp& cg, const Vector& y, double t) {
  double phi = t * cg.objective.Value(y);
  for (const LogPosy& c : cg.constraints) {
    const double fi = c.Value(y);
    if (fi >= 0.0) return kInf;
    phi -= std::log(-fi);
  }
  return phi;
}

/// Damped-Newton minimization of the barrier objective at fixed t.
/// Returns the number of Newton iterations, or an error.
Result<int> CenterStep(const ConvexGp& cg, double t,
                       const SolverOptions& opt, Vector* y,
                       SolveStats* stats) {
  const size_t n = y->size();
  for (int iter = 0; iter < opt.max_newton_per_stage; ++iter) {
    Vector grad(n, 0.0);
    Matrix hess(n, n);
    cg.objective.Accumulate(*y, t, t, 0.0, &grad, &hess, nullptr);
    for (const LogPosy& c : cg.constraints) {
      // First pass for the value only (cheap); needed for the weights.
      const double fi = c.Value(*y);
      if (fi >= 0.0) {
        return Status::Internal("barrier stage entered infeasible point");
      }
      const double inv = 1.0 / (-fi);
      // d/dy [-log(-Fi)] = grad Fi / (-Fi);
      // d2    = Hess Fi/(-Fi) + grad grad^T / Fi^2.
      c.Accumulate(*y, inv, inv, 1.0 / (fi * fi), &grad, &hess, nullptr);
    }

    auto step = SolveCholesky(hess, grad);
    if (!step.ok()) return step.status();
    Vector d = std::move(step).value();
    for (double& di : d) di = -di;

    double lambda2 = -Dot(grad, d);
    // The barrier objective scales with t, and the suboptimality implied by
    // a Newton decrement lambda is ~lambda^2/t, so the stopping threshold
    // must scale with t as well or centering stalls at machine precision.
    if (lambda2 / 2.0 < opt.inner_tol * std::max(1.0, t)) return iter;
    lambda2 *= ClampStep(&d);

    // Backtracking line search on the true barrier value.
    const double phi0 = BarrierValue(cg, *y, t);
    double alpha = 1.0;
    Vector y_new(n);
    for (int ls = 0; ls < 60; ++ls) {
      for (size_t j = 0; j < n; ++j) y_new[j] = (*y)[j] + alpha * d[j];
      const double phi1 = BarrierValue(cg, y_new, t);
      if (phi1 <= phi0 - 0.25 * alpha * lambda2) break;
      alpha *= 0.5;
      ++stats->line_search_backtracks;
      if (alpha < 1e-14) {
        // No descent possible: already at numerical optimum for this t.
        return iter;
      }
    }
    *y = y_new;
    ++stats->newton_iterations;
  }
  return Status::NotConverged("Newton centering exceeded iteration limit");
}

/// Phase I: find strictly feasible y, minimizing the max constraint value.
/// Works on the augmented variable vector (y, s) with constraints
/// Fi(y) - s <= 0, driving s below zero.
Result<Vector> PhaseOne(const ConvexGp& cg, const SolverOptions& opt,
                        const Vector& y0, SolveStats* stats) {
  stats->phase1 = true;
  const size_t n = static_cast<size_t>(cg.num_vars);
  Vector y = y0;
  double s = 0.0;
  for (const LogPosy& c : cg.constraints) s = std::max(s, c.Value(y));
  if (s < -1e-6) return y;  // already strictly feasible
  s += 1.0;

  double t = 1.0;
  const double m = static_cast<double>(cg.constraints.size());
  for (int outer = 0; outer < opt.max_outer; ++outer) {
    // Damped Newton on  t*s - Σ log(s - Fi(y)).
    for (int iter = 0; iter < opt.max_newton_per_stage; ++iter) {
      Vector grad(n + 1, 0.0);
      Matrix hess(n + 1, n + 1);
      grad[n] = t;
      bool bail = false;
      for (const LogPosy& c : cg.constraints) {
        Vector gi;
        const double fi = c.Accumulate(y, 0.0, 0.0, 0.0, nullptr, nullptr,
                                       &gi);
        const double gap = s - fi;
        if (gap <= 0.0) {
          bail = true;
          break;
        }
        const double inv = 1.0 / gap;
        // Accumulate again with Hessian weights for the y-block:
        // H_i/gap + g_i g_iᵀ/gap².
        Matrix hblock(n, n);
        c.Accumulate(y, 0.0, inv, inv * inv, nullptr, &hblock, nullptr);
        for (size_t i = 0; i < n; ++i) {
          grad[i] += inv * gi[i];
          for (size_t j = 0; j < n; ++j) hess(i, j) += hblock(i, j);
          hess(i, n) += -inv * inv * gi[i];
          hess(n, i) += -inv * inv * gi[i];
        }
        grad[n] += -inv;
        hess(n, n) += inv * inv;
      }
      if (bail) break;

      auto step = SolveCholesky(hess, grad);
      if (!step.ok()) return step.status();
      Vector d = std::move(step).value();
      for (double& di : d) di = -di;
      double lambda2 = -Dot(grad, d);
      if (lambda2 / 2.0 < opt.inner_tol) break;
      lambda2 *= ClampStep(&d);

      // Line search maintaining s - Fi(y) > 0. Phase I only needs *a*
      // strictly feasible point, so accept any trial that achieves one.
      double val0 = t * s;
      for (const LogPosy& c : cg.constraints) val0 -= std::log(s - c.Value(y));
      double alpha = 1.0;
      Vector y_try(n);
      for (int ls = 0; ls < 60; ++ls) {
        for (size_t j = 0; j < n; ++j) y_try[j] = y[j] + alpha * d[j];
        const double s_try = s + alpha * d[n];
        bool feas = true;
        double max_f = -kInf;
        double val = t * s_try;
        for (const LogPosy& c : cg.constraints) {
          const double fi = c.Value(y_try);
          max_f = std::max(max_f, fi);
          const double gap = s_try - fi;
          if (gap <= 0.0) {
            feas = false;
            break;
          }
          val -= std::log(gap);
        }
        if (feas && max_f < -1e-3) return y_try;  // strictly feasible
        if (feas && val <= val0 - 0.25 * alpha * lambda2) break;
        alpha *= 0.5;
        ++stats->line_search_backtracks;
        if (alpha < 1e-14) break;
      }
      if (alpha < 1e-14) break;
      for (size_t j = 0; j < n; ++j) y[j] += alpha * d[j];
      s += alpha * d[n];
      ++stats->newton_iterations;
      if (s < -1e-3) return y;  // strictly feasible, done early
    }
    if (s < -1e-6) return y;
    if (m / t < opt.duality_tol) break;
    t *= opt.barrier_mu;
  }
  if (s < 0.0) return y;
  return Status::Infeasible("phase I ended with max constraint value " +
                            std::to_string(s));
}

Result<GpSolution> SolveGpImpl(const GpProblem& problem,
                               const SolverOptions& options,
                               const Vector* warm_start, SolveStats* stats) {
  if (problem.num_vars <= 0) {
    return Status::InvalidArgument("GP has no variables");
  }
  if (problem.objective.empty()) {
    return Status::InvalidArgument("GP has an empty objective");
  }
  {
    int mx = problem.objective.MaxVarIndex();
    for (const Posynomial& c : problem.constraints) {
      mx = std::max(mx, c.MaxVarIndex());
    }
    if (mx >= problem.num_vars) {
      return Status::InvalidArgument(
          "posynomial references variable index beyond num_vars");
    }
  }

  ConvexGp cg;
  cg.num_vars = problem.num_vars;
  cg.objective = LogPosy::From(problem.objective);
  cg.constraints.reserve(problem.constraints.size());
  for (const Posynomial& c : problem.constraints) {
    if (c.empty()) continue;  // vacuous "0 <= 1"
    cg.constraints.push_back(LogPosy::From(c));
  }

  const size_t n = static_cast<size_t>(problem.num_vars);
  Vector y(n, 0.0);
  if (warm_start != nullptr) {
    POLYDAB_CHECK(warm_start->size() == n);
    for (size_t j = 0; j < n; ++j) {
      POLYDAB_CHECK((*warm_start)[j] > 0.0);
      y[j] = std::log((*warm_start)[j]);
    }
  }

  const double m = std::max<size_t>(cg.constraints.size(), 1);
  double t = options.t0;
  if (!cg.constraints.empty()) {
    // Any strictly interior point works for the barrier, even one hugging
    // the boundary (as a previous solve's optimum does): the log barrier is
    // finite there and its gradient pushes inward.
    bool warm_feasible = warm_start != nullptr;
    if (warm_feasible) {
      for (const LogPosy& c : cg.constraints) {
        if (c.Value(y) >= 0.0) {
          warm_feasible = false;
          break;
        }
      }
    }
    if (warm_feasible) {
      // A strictly feasible warm start (typically last solve's optimum for
      // slightly moved data) is near the end of the central path already;
      // start the barrier schedule much closer to its final value.
      stats->warm_feasible = true;
      t = std::max(options.t0, m / options.duality_tol * 1e-4);
    } else {
      POLYDAB_ASSIGN_OR_RETURN(y, PhaseOne(cg, options, y, stats));
    }
  }

  int newton_total = 0;
  for (int outer = 0; outer < options.max_outer; ++outer) {
    POLYDAB_ASSIGN_OR_RETURN(int iters, CenterStep(cg, t, options, &y, stats));
    newton_total += iters;
    if (m / t < options.duality_tol) break;
    t *= options.barrier_mu;
  }

  GpSolution sol;
  sol.x.resize(n);
  for (size_t j = 0; j < n; ++j) sol.x[j] = std::exp(y[j]);
  sol.objective = problem.objective.Evaluate(sol.x);
  sol.newton_iterations = newton_total;
  return sol;
}

}  // namespace

Result<GpSolution> SolveGp(const GpProblem& problem,
                           const SolverOptions& options,
                           const Vector* warm_start) {
  SolveStats stats;
  if (options.registry == nullptr) {
    return SolveGpImpl(problem, options, warm_start, &stats);
  }
  obs::MetricRegistry& reg = *options.registry;
  obs::ScopedTimer timer(reg.GetHistogram("gp.solver.solve_seconds"));
  Result<GpSolution> result =
      SolveGpImpl(problem, options, warm_start, &stats);
  timer.Stop();
  reg.GetCounter("gp.solver.solves")->Inc();
  reg.GetHistogram("gp.solver.newton_iterations")
      ->Record(static_cast<double>(stats.newton_iterations));
  reg.GetCounter("gp.solver.line_search_backtracks")
      ->Add(stats.line_search_backtracks);
  if (stats.phase1) reg.GetCounter("gp.solver.phase1_solves")->Inc();
  if (warm_start != nullptr) {
    reg.GetCounter("gp.solver.warm_started_solves")->Inc();
    if (stats.warm_feasible) {
      reg.GetCounter("gp.solver.warm_start_feasible")->Inc();
    }
  }
  reg.GetCounter(result.ok() ? "gp.solver.converged" : "gp.solver.failures")
      ->Inc();
  return result;
}

}  // namespace polydab::gp
