#ifndef POLYDAB_GP_POSYNOMIAL_H_
#define POLYDAB_GP_POSYNOMIAL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"

/// \file posynomial.h
/// Posynomials over positive optimization variables — the modeling language
/// of geometric programming (Boyd et al., "A tutorial on geometric
/// programming", which the paper cites as [12]). Exponents are arbitrary
/// reals; coefficients must be positive.
///
/// Note: these are *optimization* variables (DABs b, c and the recompute
/// rate R), a different space from the data-item VarIds in src/poly.

namespace polydab::gp {

/// \brief c · Π v_j^{a_j}: one monomial term of a posynomial. coef > 0.
struct GpTerm {
  double coef = 1.0;
  /// (variable index, real exponent); variable indices need not be sorted.
  std::vector<std::pair<int, double>> exponents;
};

/// \brief A sum of positive monomial terms f(v) = Σ_k c_k Π_j v_j^{a_kj}.
class Posynomial {
 public:
  Posynomial() = default;

  /// Append the term coef · Π v_j^{a_j}. coef must be > 0.
  void AddTerm(double coef, std::vector<std::pair<int, double>> exponents);

  /// Add the terms of another posynomial.
  void Add(const Posynomial& other);

  /// Multiply every coefficient by s > 0.
  void Scale(double s);

  const std::vector<GpTerm>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

  /// Evaluate at strictly positive \p v.
  double Evaluate(const Vector& v) const;

  /// Largest variable index referenced, or -1 when constant/empty.
  int MaxVarIndex() const;

 private:
  std::vector<GpTerm> terms_;
};

/// \brief A geometric program in standard form:
///   minimize    f0(v)
///   subject to  fi(v) <= 1,  i = 1..m
/// over strictly positive variables v in R^num_vars.
struct GpProblem {
  int num_vars = 0;
  Posynomial objective;
  std::vector<Posynomial> constraints;
  /// Optional variable names for diagnostics; empty or size num_vars.
  std::vector<std::string> var_names;
};

}  // namespace polydab::gp

#endif  // POLYDAB_GP_POSYNOMIAL_H_
