#ifndef POLYDAB_GP_SOLVER_INTERNAL_H_
#define POLYDAB_GP_SOLVER_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "gp/gp_solver.h"
#include "gp/posynomial.h"
#include "obs/metrics.h"

/// \file solver_internal.h
/// Shared internals between the barrier solver (gp_solver.cc) and the
/// batched solve engine (solve_engine.cc). Everything here is an
/// implementation detail of src/gp: the SoA convexified program, the
/// reusable per-solve workspace, and the unrouted solve entry points the
/// engine calls to guarantee bit-identical results with `SolveGp`.
///
/// The contract that makes the engine's caching and structure sharing
/// admissible (docs/SOLVER.md): `SolveConvexGp` is a deterministic pure
/// function of (program bits, options bits, warm-start bits). Two calls
/// with bitwise-equal inputs produce bitwise-equal outputs, regardless of
/// which Workspace they run in, because every scratch buffer is fully
/// overwritten before use and the arithmetic order is fixed.

namespace polydab::gp::internal {

/// One posynomial in log space, laid out structure-of-arrays: term k owns
/// entries [term_off[k], term_off[k+1]) of exp_var / exp_coef, and
/// logc[k] = log(coef[k]). The raw coefficient bits are kept so an
/// incremental refill can skip the std::log for unchanged terms (the
/// common case when a single item escaped and most of the program is
/// untouched).
struct SoaPosy {
  std::vector<double> logc;
  std::vector<double> coef;
  std::vector<int> term_off;  ///< size num_terms()+1
  std::vector<int> exp_var;
  std::vector<double> exp_coef;

  int num_terms() const { return static_cast<int>(logc.size()); }

  /// F(y) = log Σ_k exp(logc_k + a_k·y), using \p z as scratch.
  double Value(const Vector& y, Vector* z) const;
};

/// Convexified GP: minimize F0(y) s.t. Fi(y) <= 0. Vacuous (empty)
/// constraints are dropped at build time.
struct ConvexGp {
  SoaPosy objective;
  std::vector<SoaPosy> constraints;
  int num_vars = 0;
};

/// Reusable scratch for one solve. Buffers are grown on demand and fully
/// overwritten before each use, so reuse across programs (even of
/// different shapes) cannot change any computed bit.
struct Workspace {
  Vector z;      ///< per-term log values
  Vector w;      ///< softmax weights
  Vector g;      ///< accumulated gradient of one posynomial
  Vector gi;     ///< phase-I saved constraint gradient
  Vector grad;   ///< Newton gradient
  Vector y_new;  ///< line-search trial point
  Vector y_try;  ///< phase-I line-search trial point
  Matrix hess;   ///< Newton Hessian
  Matrix hblock; ///< phase-I per-constraint Hessian block
};

/// Per-solve work counters, always accumulated (trivially cheap ints) and
/// flushed to the telemetry registry only when one is configured.
struct SolveStats {
  int newton_iterations = 0;       ///< all Newton work, incl. failed stages
  int line_search_backtracks = 0;
  int damped_stages = 0;           ///< centering stages rerun with damping
  bool phase1 = false;
  bool warm_feasible = false;      ///< warm start accepted AND solve used it
  bool cold_restart = false;       ///< warm centering failed; retried cold
};

/// Validation shared by SolveGp and the engine: nonempty objective,
/// positive num_vars, variable indices in range.
Status ValidateGpProblem(const GpProblem& problem);

/// Build the SoA convexified form from a validated problem.
void BuildConvexGp(const GpProblem& problem, ConvexGp* cg);

/// True iff \p problem has exactly the structure of \p cg (same num_vars,
/// term counts, exponent variables and exponent values) so that
/// RefillCoefficients is sufficient to retarget the skeleton.
bool StructureMatches(const ConvexGp& cg, const GpProblem& problem);

/// Overwrite only the coefficient data of \p cg with \p problem's
/// (structures must match). Terms whose coefficient bits are unchanged
/// keep their cached log; returns the number of std::log calls skipped.
int64_t RefillCoefficients(const GpProblem& problem, ConvexGp* cg);

/// Structural hash of a program: num_vars, per-posynomial term counts and
/// exponent (variable, power-bits) pairs — everything except the
/// coefficient values. Programs with equal signatures can share a ConvexGp
/// skeleton via RefillCoefficients (subject to StructureMatches, which
/// guards against hash collisions).
uint64_t ShapeSignature(const GpProblem& problem);

/// Solve the convexified program. Pure function of the argument bits (see
/// file comment); \p ws may be shared across calls. \p problem is the
/// source problem, used only to evaluate the objective at the optimum.
Result<GpSolution> SolveConvexGp(const GpProblem& problem, const ConvexGp& cg,
                                 const SolverOptions& options,
                                 const Vector* warm_start, SolveStats* stats,
                                 Workspace* ws);

/// Validate + build + solve with a local workspace, ignoring
/// `options.engine` and recording nothing: the raw solver the engine and
/// `SolveGp` both bottom out in.
Result<GpSolution> SolveGpUnrouted(const GpProblem& problem,
                                   const SolverOptions& options,
                                   const Vector* warm_start,
                                   SolveStats* stats);

/// Flush one solve's stats to the `gp.solver.*` instruments (everything
/// except the `solve_seconds` timer, which the caller holds so cache hits
/// still measure their true latency). No-op on a null registry.
void RecordSolveInstruments(obs::MetricRegistry* registry,
                            const SolveStats& stats, bool warm_started,
                            bool ok);

}  // namespace polydab::gp::internal

#endif  // POLYDAB_GP_SOLVER_INTERNAL_H_
