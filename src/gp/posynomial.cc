#include "gp/posynomial.h"

#include <cmath>

#include "common/logging.h"

namespace polydab::gp {

void Posynomial::AddTerm(double coef,
                         std::vector<std::pair<int, double>> exponents) {
  POLYDAB_CHECK(coef > 0.0);
  GpTerm t;
  t.coef = coef;
  t.exponents = std::move(exponents);
  terms_.push_back(std::move(t));
}

void Posynomial::Add(const Posynomial& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
}

void Posynomial::Scale(double s) {
  POLYDAB_CHECK(s > 0.0);
  for (GpTerm& t : terms_) t.coef *= s;
}

double Posynomial::Evaluate(const Vector& v) const {
  double sum = 0.0;
  for (const GpTerm& t : terms_) {
    double prod = t.coef;
    for (const auto& [var, exp] : t.exponents) {
      POLYDAB_DCHECK(static_cast<size_t>(var) < v.size());
      prod *= std::pow(v[static_cast<size_t>(var)], exp);
    }
    sum += prod;
  }
  return sum;
}

int Posynomial::MaxVarIndex() const {
  int mx = -1;
  for (const GpTerm& t : terms_) {
    for (const auto& [var, exp] : t.exponents) {
      (void)exp;
      if (var > mx) mx = var;
    }
  }
  return mx;
}

}  // namespace polydab::gp
