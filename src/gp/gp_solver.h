#ifndef POLYDAB_GP_GP_SOLVER_H_
#define POLYDAB_GP_GP_SOLVER_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "gp/posynomial.h"
#include "obs/metrics.h"

/// \file gp_solver.h
/// A from-scratch geometric-program solver (the paper used CVXOPT; see
/// DESIGN.md §2). The GP is convexified by the standard log transform
/// y = log v, turning every posynomial f into the convex log-sum-exp
/// function F(y) = log f(e^y). The convex program
///     minimize F0(y)  subject to  Fi(y) <= 0
/// is then solved with a primal barrier interior-point method (damped
/// Newton inner iterations, geometric barrier schedule), preceded by a
/// phase-I feasibility solve when the starting point violates a constraint.

namespace polydab::gp {

class SolveEngine;

/// Tunables for the barrier method. Defaults solve every program in this
/// codebase to ~1e-7 relative accuracy in well under a millisecond per
/// hundred variables.
struct SolverOptions {
  double duality_tol = 1e-7;   ///< stop when m / t < duality_tol
  double inner_tol = 1e-9;     ///< Newton decrement^2 / 2 threshold
  double t0 = 1.0;             ///< initial barrier weight
  double barrier_mu = 20.0;    ///< barrier growth factor per outer step
  int max_newton_per_stage = 200;
  int max_outer = 60;
  /// Optional telemetry sink (docs/OBSERVABILITY.md). When set, every
  /// solve records the `gp.solver.*` instruments: per-solve latency and
  /// Newton-iteration histograms plus counters for line-search
  /// backtracks, phase-I invocations, warm starts, and convergence
  /// outcome. Null (the default) costs one branch per solve and nothing
  /// else. Not owned; must outlive the solve.
  obs::MetricRegistry* registry = nullptr;
  /// Optional batched/memoizing solve server (gp/solve_engine.h,
  /// docs/SOLVER.md). When set, `SolveGp` routes through it: results are
  /// bit-identical to the direct path by construction (the engine only
  /// returns memoized solutions for bitwise-equal inputs and otherwise
  /// runs this same solver in a pooled workspace), and the engine replays
  /// the `gp.solver.*` instruments on cache hits so telemetry totals
  /// match an engine-less run exactly. Null (the default) costs one
  /// branch per solve. Not owned; must outlive the solve.
  SolveEngine* engine = nullptr;
};

/// Result of a successful solve.
struct GpSolution {
  Vector x;                ///< optimal variable values (positive)
  double objective = 0.0;  ///< f0(x) at the returned point
  int newton_iterations = 0;
};

/// \brief Solve \p problem to optimality.
///
/// \param problem   GP in standard form; every constraint is fi(v) <= 1.
/// \param options   barrier tunables.
/// \param warm_start optional strictly positive starting point (need not be
///        feasible; phase I will repair it). Passing the previous solution
///        of a slightly perturbed program typically saves most of the work,
///        which is how the coordinator amortizes DAB recomputations.
Result<GpSolution> SolveGp(const GpProblem& problem,
                           const SolverOptions& options = SolverOptions(),
                           const Vector* warm_start = nullptr);

}  // namespace polydab::gp

#endif  // POLYDAB_GP_GP_SOLVER_H_
