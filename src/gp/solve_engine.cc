#include "gp/solve_engine.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace polydab::gp {

namespace {

/// Pooled skeletons kept per signature; beyond this the extras are freed.
/// Concurrency above this per-shape level is rare (it needs that many
/// rt workers solving the same shape at the same instant) and the
/// fallback is a fresh build, never a wrong answer.
constexpr size_t kMaxPooledPerSignature = 8;

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool PosyEquals(const Posynomial& a, const Posynomial& b) {
  if (a.terms().size() != b.terms().size()) return false;
  for (size_t k = 0; k < a.terms().size(); ++k) {
    const GpTerm& ta = a.terms()[k];
    const GpTerm& tb = b.terms()[k];
    if (!SameBits(ta.coef, tb.coef)) return false;
    if (ta.exponents.size() != tb.exponents.size()) return false;
    for (size_t e = 0; e < ta.exponents.size(); ++e) {
      if (ta.exponents[e].first != tb.exponents[e].first ||
          !SameBits(ta.exponents[e].second, tb.exponents[e].second)) {
        return false;
      }
    }
  }
  return true;
}

bool ProblemEquals(const GpProblem& a, const GpProblem& b) {
  if (a.num_vars != b.num_vars) return false;
  if (!PosyEquals(a.objective, b.objective)) return false;
  if (a.constraints.size() != b.constraints.size()) return false;
  for (size_t i = 0; i < a.constraints.size(); ++i) {
    if (!PosyEquals(a.constraints[i], b.constraints[i])) return false;
  }
  return true;
}

bool WarmEquals(bool a_has, const Vector& a, bool b_has, const Vector& b) {
  if (a_has != b_has) return false;
  if (!a_has) return true;
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameBits(a[i], b[i])) return false;
  }
  return true;
}

bool NumericsEqual(const SolverOptions& a, const SolverOptions& b) {
  return SameBits(a.duality_tol, b.duality_tol) &&
         SameBits(a.inner_tol, b.inner_tol) && SameBits(a.t0, b.t0) &&
         SameBits(a.barrier_mu, b.barrier_mu) &&
         a.max_newton_per_stage == b.max_newton_per_stage &&
         a.max_outer == b.max_outer;
}

/// FNV-1a over 64-bit words (same scheme as internal::ShapeSignature but
/// over the full input bits: structure + coefficients + warm + options).
struct Fnv64 {
  uint64_t h = 1469598103934665603ull;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void MixInt(int v) { Mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void MixDouble(double v) { Mix(std::bit_cast<uint64_t>(v)); }
};

void MixPosy(const Posynomial& p, Fnv64* f) {
  f->MixInt(static_cast<int>(p.terms().size()));
  for (const GpTerm& t : p.terms()) {
    f->MixDouble(t.coef);
    f->MixInt(static_cast<int>(t.exponents.size()));
    for (const auto& [var, exp] : t.exponents) {
      f->MixInt(var);
      f->MixDouble(exp);
    }
  }
}

/// The memo key digest. This is the "quantized value-vector key" of
/// docs/SOLVER.md: the program coefficients are deterministic functions
/// of the coordinator's value vector, and the quantization grid is the
/// identity (full double bits) because any coarser grid would return a
/// neighbor's solution and break byte-identity. The digest only locates
/// the bucket; a hit still requires bitwise equality of every input.
uint64_t KeyHash(const GpProblem& problem, const SolverOptions& options,
                 const Vector* warm) {
  Fnv64 f;
  f.MixInt(problem.num_vars);
  MixPosy(problem.objective, &f);
  for (const Posynomial& c : problem.constraints) {
    f.Mix(0x5eed5eed5eed5eedull);
    MixPosy(c, &f);
  }
  f.Mix(warm != nullptr ? 0x9e3779b97f4a7c15ull : 0ull);
  if (warm != nullptr) {
    f.MixInt(static_cast<int>(warm->size()));
    for (double v : *warm) f.MixDouble(v);
  }
  f.MixDouble(options.duality_tol);
  f.MixDouble(options.inner_tol);
  f.MixDouble(options.t0);
  f.MixDouble(options.barrier_mu);
  f.MixInt(options.max_newton_per_stage);
  f.MixInt(options.max_outer);
  return f.h;
}

}  // namespace

struct SolveEngine::StructEntry {
  uint64_t signature = 0;
  bool built = false;
  internal::ConvexGp cg;
  internal::Workspace ws;
};

struct SolveEngine::CacheEntry {
  uint64_t key = 0;
  GpProblem problem;
  bool has_warm = false;
  Vector warm;
  SolverOptions numerics;  ///< registry/engine fields ignored
  GpSolution solution;
  internal::SolveStats stats;
};

SolveEngine::SolveEngine(const Options& options) : opts_(options) {}

SolveEngine::~SolveEngine() = default;

SolveEngine::StructEntry* SolveEngine::AcquireStruct(uint64_t signature) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    auto it = pool_.find(signature);
    if (it != pool_.end() && !it->second.empty()) {
      StructEntry* e = it->second.back().release();
      it->second.pop_back();
      return e;
    }
  }
  auto* e = new StructEntry();
  e->signature = signature;
  return e;
}

void SolveEngine::ReleaseStruct(StructEntry* entry) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  auto& vec = pool_[entry->signature];
  if (vec.size() >= kMaxPooledPerSignature) {
    delete entry;
    return;
  }
  vec.emplace_back(entry);
}

Result<GpSolution> SolveEngine::SolveOne(const GpProblem& problem,
                                         const SolverOptions& options,
                                         const Vector* warm_start,
                                         StructEntry* entry) {
  SolverOptions inner = options;
  inner.engine = nullptr;
  obs::MetricRegistry* sreg = inner.registry;
  obs::ScopedTimer timer(
      sreg == nullptr ? nullptr
                      : sreg->GetHistogram("gp.solver.solve_seconds"));

  const uint64_t key = KeyHash(problem, inner, warm_start);
  if (opts_.cache_entries > 0) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto range = cache_index_.equal_range(key);
    for (auto it = range.first; it != range.second; ++it) {
      CacheEntry& e = *it->second;
      if (ProblemEquals(e.problem, problem) &&
          WarmEquals(e.has_warm, e.warm, warm_start != nullptr,
                     warm_start != nullptr ? *warm_start : Vector()) &&
          NumericsEqual(e.numerics, inner)) {
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        GpSolution sol = e.solution;
        const internal::SolveStats stats = e.stats;
        const bool warm_started = e.has_warm;
        timer.Stop();
        // Replay the memoized solve's gp.solver.* stats: the totals an
        // engine-less run would have recorded for this (identical,
        // deterministic) solve.
        internal::RecordSolveInstruments(sreg, stats, warm_started, true);
        if (opts_.registry != nullptr) {
          opts_.registry->GetCounter("gp.engine.cache_hits")->Inc();
        }
        return sol;
      }
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.registry != nullptr) {
    opts_.registry->GetCounter("gp.engine.cache_misses")->Inc();
  }

  internal::SolveStats stats;
  Result<GpSolution> result{Status::Internal("not solved")};
  Status valid = internal::ValidateGpProblem(problem);
  if (!valid.ok()) {
    result = valid;
  } else {
    StructEntry* se = entry;
    const uint64_t sig = internal::ShapeSignature(problem);
    const bool own = se == nullptr;
    if (own) se = AcquireStruct(sig);
    if (se->built && se->signature == sig &&
        internal::StructureMatches(se->cg, problem)) {
      const int64_t skipped = internal::RefillCoefficients(problem, &se->cg);
      structure_reuses_.fetch_add(1, std::memory_order_relaxed);
      coef_log_skips_.fetch_add(skipped, std::memory_order_relaxed);
      if (opts_.registry != nullptr) {
        opts_.registry->GetCounter("gp.engine.structure_reuses")->Inc();
        opts_.registry->GetCounter("gp.engine.coef_log_skips")->Add(skipped);
      }
    } else {
      internal::BuildConvexGp(problem, &se->cg);
      se->signature = sig;
      se->built = true;
    }
    result = internal::SolveConvexGp(problem, se->cg, inner, warm_start,
                                     &stats, &se->ws);
    if (own) ReleaseStruct(se);
  }

  timer.Stop();
  internal::RecordSolveInstruments(sreg, stats, warm_start != nullptr,
                                   result.ok());
  if (opts_.registry != nullptr) {
    opts_.registry
        ->GetHistogram(stats.warm_feasible
                           ? "gp.engine.warm_newton_iterations"
                           : "gp.engine.cold_newton_iterations")
        ->Record(static_cast<double>(stats.newton_iterations));
  }

  if (result.ok() && opts_.cache_entries > 0) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    CacheEntry e;
    e.key = key;
    e.problem = problem;
    e.has_warm = warm_start != nullptr;
    if (warm_start != nullptr) e.warm = *warm_start;
    e.numerics = inner;
    e.solution = *result;
    e.stats = stats;
    lru_.push_front(std::move(e));
    cache_index_.emplace(key, lru_.begin());
    while (lru_.size() > static_cast<size_t>(opts_.cache_entries)) {
      auto victim = std::prev(lru_.end());
      auto range = cache_index_.equal_range(victim->key);
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == victim) {
          cache_index_.erase(it);
          break;
        }
      }
      lru_.pop_back();
    }
  }
  return result;
}

Result<GpSolution> SolveEngine::Solve(const GpProblem& problem,
                                      const SolverOptions& options,
                                      const Vector* warm_start) {
  return SolveOne(problem, options, warm_start, nullptr);
}

std::vector<Result<GpSolution>> SolveEngine::SolveBatch(
    const std::vector<BatchItem>& items, const SolverOptions& options) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.registry != nullptr) {
    opts_.registry->GetCounter("gp.engine.batches")->Inc();
    opts_.registry->GetHistogram("gp.engine.batch_size")
        ->Record(static_cast<double>(items.size()));
  }

  // Group by shape signature, preserving first-occurrence order so the
  // solve order (and therefore the engine's own hit/miss telemetry) is
  // deterministic for a deterministic caller.
  std::vector<std::pair<uint64_t, std::vector<size_t>>> groups;
  std::unordered_map<uint64_t, size_t> group_of;
  std::vector<uint64_t> sigs(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    sigs[i] = internal::ShapeSignature(*items[i].problem);
    auto [it, fresh] = group_of.emplace(sigs[i], groups.size());
    if (fresh) groups.push_back({sigs[i], {}});
    groups[it->second].second.push_back(i);
  }

  std::vector<Result<GpSolution>> out(
      items.size(), Result<GpSolution>(Status::Internal("not solved")));
  for (auto& [sig, idxs] : groups) {
    StructEntry* se = AcquireStruct(sig);
    for (size_t i : idxs) {
      out[i] = SolveOne(*items[i].problem, options, items[i].warm_start, se);
    }
    ReleaseStruct(se);
  }
  return out;
}

}  // namespace polydab::gp
