#ifndef POLYDAB_CORE_LAQ_H_
#define POLYDAB_CORE_LAQ_H_

#include "common/status.h"
#include "core/ddm.h"
#include "core/query.h"

/// \file laq.h
/// Linear aggregate queries Σ w_i x_i : B (degree 1). The paper treats
/// them separately (§I-A; full treatment in its companion technical report
/// [1]) because the correctness condition Σ |w_i| b_i ≤ B does not depend
/// on current data values — a valid assignment never goes stale, so no
/// recomputations are needed and the refresh-optimal assignment has a
/// closed form by Lagrange multipliers:
///
///   monotonic ddm  (min Σ λ_i/b_i):    b_i ∝ sqrt(λ_i / |w_i|)
///   random walk    (min Σ λ_i²/b_i²):  b_i ∝ (λ_i² / |w_i|)^(1/3)
///
/// scaled so that Σ |w_i| b_i = B exactly.

namespace polydab::core {

/// \brief Closed-form refresh-optimal DABs for LAQ \p query. Negative
/// weights are allowed (the drift bound uses |w_i|). The result has
/// secondary == primary and recompute_rate == 0: the assignment never
/// needs recomputation.
Result<QueryDabs> SolveLaq(const PolynomialQuery& query, const Vector& rates,
                           DataDynamicsModel ddm = DataDynamicsModel::kMonotonic);

/// \brief Jointly optimal DABs for *multiple* LAQs sharing data items:
///   minimize   Σ_i rate(λ_i, b_i)
///   subject to Σ_j |w_qj| b_j ≤ B_q  for every query q.
/// With shared items the per-query closed form no longer applies (the
/// EQI-style min-merge of per-query solutions is feasible but
/// sub-optimal); the joint program is still a GP and is solved exactly.
/// Returns the per-item DAB aligned with the union of query variables.
struct MultiLaqSolution {
  std::vector<VarId> vars;  ///< union of query variables, sorted
  Vector dabs;              ///< jointly optimal per-item filter widths
  double total_rate = 0.0;  ///< modeled refresh load Σ rate(λ_i, b_i)
};

Result<MultiLaqSolution> SolveMultiLaq(
    const std::vector<PolynomialQuery>& queries, const Vector& rates,
    DataDynamicsModel ddm = DataDynamicsModel::kMonotonic);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_LAQ_H_
