#include "core/planner.h"

namespace polydab::core {

namespace {

/// PPQ sub-solver for the configured assignment method.
PpqSolver MakeSubSolver(const Vector& values, const Vector& rates,
                        const PlannerConfig& config) {
  switch (config.method) {
    case AssignmentMethod::kOptimalRefresh:
      return [&values, &rates, &config](const PolynomialQuery& q,
                                        const QueryDabs* w) {
        return SolveOptimalRefresh(q, values, rates, config.dual.ddm,
                                   config.dual.solver, w);
      };
    case AssignmentMethod::kDualDab:
      return [&values, &rates, &config](const PolynomialQuery& q,
                                        const QueryDabs* w) {
        return SolveDualDab(q, values, rates, config.dual, w);
      };
    case AssignmentMethod::kWsDab:
      return [&values](const PolynomialQuery& q, const QueryDabs*) {
        return SolveWsDab(q, values);
      };
  }
  return nullptr;
}

/// Decompose a general query into the sub-queries its heuristic solves:
/// HH -> {P1 : B/2, P2 : B/2}; DS -> {P1+P2 : B}; pure-sign queries and
/// PPQs -> themselves.
Result<std::vector<PolynomialQuery>> SplitSubqueries(
    const PolynomialQuery& query, GeneralPqHeuristic heuristic) {
  Polynomial p1, p2;
  query.p.SplitSigns(&p1, &p2);
  if (p1.IsZero() && p2.IsZero()) {
    return Status::InvalidArgument("query polynomial is zero");
  }
  if (p2.IsZero() || p2.Degree() == 0) {
    PolynomialQuery q = query;
    q.p = p1;
    return std::vector<PolynomialQuery>{q};
  }
  if (p1.IsZero() || p1.Degree() == 0) {
    PolynomialQuery q = query;
    q.p = p2;  // -P2 drifts exactly as P2
    return std::vector<PolynomialQuery>{q};
  }
  switch (heuristic) {
    case GeneralPqHeuristic::kHalfAndHalf:
      return std::vector<PolynomialQuery>{
          {query.id, p1, query.qab / 2.0},
          {query.id, p2, query.qab / 2.0}};
    case GeneralPqHeuristic::kDifferentSum:
      return std::vector<PolynomialQuery>{{query.id, p1 + p2, query.qab}};
  }
  return Status::Internal("unknown heuristic");
}

}  // namespace

Result<QueryDabs> PlanQuery(const PolynomialQuery& query,
                            const Vector& values, const Vector& rates,
                            const PlannerConfig& config,
                            const QueryDabs* warm) {
  if (query.p.IsZero()) {
    return Status::InvalidArgument("query polynomial is zero");
  }
  // Linear aggregate queries have a value-independent optimal closed form
  // that never goes stale (laq.h); every method uses it.
  if (query.IsLinearAggregate()) {
    return SolveLaq(query, rates, config.dual.ddm);
  }
  return SolveGeneralPq(query, config.heuristic,
                        MakeSubSolver(values, rates, config), warm);
}

Result<QueryPlan> PlanQueryParts(const PolynomialQuery& query,
                                 const Vector& values, const Vector& rates,
                                 const PlannerConfig& config) {
  if (query.p.IsZero()) {
    return Status::InvalidArgument("query polynomial is zero");
  }
  QueryPlan plan;
  if (query.IsLinearAggregate()) {
    POLYDAB_ASSIGN_OR_RETURN(QueryDabs d,
                             SolveLaq(query, rates, config.dual.ddm));
    plan.parts.push_back(PlanPart{query, std::move(d)});
    return plan;
  }
  POLYDAB_ASSIGN_OR_RETURN(std::vector<PolynomialQuery> subs,
                           SplitSubqueries(query, config.heuristic));
  PpqSolver solve = MakeSubSolver(values, rates, config);
  for (PolynomialQuery& sub : subs) {
    POLYDAB_ASSIGN_OR_RETURN(QueryDabs d, solve(sub, nullptr));
    plan.parts.push_back(PlanPart{std::move(sub), std::move(d)});
  }
  return plan;
}

Result<QueryDabs> ReplanPart(const PlanPart& part, const Vector& values,
                             const Vector& rates,
                             const PlannerConfig& config) {
  if (part.subquery.IsLinearAggregate()) {
    return SolveLaq(part.subquery, rates, config.dual.ddm);
  }
  return MakeSubSolver(values, rates, config)(part.subquery, &part.dabs);
}

}  // namespace polydab::core
