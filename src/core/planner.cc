#include "core/planner.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

#include "gp/solve_engine.h"
#include "obs/trace.h"

namespace polydab::core {

namespace {

/// Record a planner event on the run's causal trace, stamped with the
/// sink's logical clock (the driving simulator advances it). One branch
/// when tracing is off, like every other emission site.
void TracePlannerEvent(const PlannerConfig& config, obs::TraceEventKind kind,
                       int query, bool ok) {
  if (config.trace == nullptr) return;
  obs::TraceEvent e;
  e.time = std::isnan(config.trace_time) ? config.trace->now()
                                         : config.trace_time;
  e.kind = kind;
  e.node = config.trace_node;
  e.thread = config.trace_thread;
  e.query = query;
  e.flag = ok ? 1 : 0;
  config.trace->Emit(e);
}

/// PPQ sub-solver for the configured assignment method. The planner's
/// telemetry registry (if any) is propagated into the GP solver options so
/// one `PlannerConfig::registry` assignment instruments the whole stack.
PpqSolver MakeSubSolver(const Vector& values, const Vector& rates,
                        const PlannerConfig& config) {
  DualDabParams dual = config.dual;
  if (dual.solver.registry == nullptr) dual.solver.registry = config.registry;
  switch (config.method) {
    case AssignmentMethod::kOptimalRefresh:
      return [&values, &rates, dual](const PolynomialQuery& q,
                                     const QueryDabs* w) {
        return SolveOptimalRefresh(q, values, rates, dual.ddm, dual.solver,
                                   w);
      };
    case AssignmentMethod::kDualDab:
      return [&values, &rates, dual](const PolynomialQuery& q,
                                     const QueryDabs* w) {
        return SolveDualDab(q, values, rates, dual, w);
      };
    case AssignmentMethod::kWsDab:
      return [&values](const PolynomialQuery& q, const QueryDabs*) {
        return SolveWsDab(q, values);
      };
  }
  return nullptr;
}

/// Decompose a general query into the sub-queries its heuristic solves:
/// HH -> {P1 : B/2, P2 : B/2}; DS -> {P1+P2 : B}; pure-sign queries and
/// PPQs -> themselves.
Result<std::vector<PolynomialQuery>> SplitSubqueries(
    const PolynomialQuery& query, GeneralPqHeuristic heuristic) {
  Polynomial p1, p2;
  query.p.SplitSigns(&p1, &p2);
  if (p1.IsZero() && p2.IsZero()) {
    return Status::InvalidArgument("query polynomial is zero");
  }
  if (p2.IsZero() || p2.Degree() == 0) {
    PolynomialQuery q = query;
    q.p = p1;
    return std::vector<PolynomialQuery>{q};
  }
  if (p1.IsZero() || p1.Degree() == 0) {
    PolynomialQuery q = query;
    q.p = p2;  // -P2 drifts exactly as P2
    return std::vector<PolynomialQuery>{q};
  }
  switch (heuristic) {
    case GeneralPqHeuristic::kHalfAndHalf:
      return std::vector<PolynomialQuery>{
          {query.id, p1, query.qab / 2.0},
          {query.id, p2, query.qab / 2.0}};
    case GeneralPqHeuristic::kDifferentSum:
      return std::vector<PolynomialQuery>{{query.id, p1 + p2, query.qab}};
  }
  return Status::Internal("unknown heuristic");
}

}  // namespace

const char* Name(AssignmentMethod method) {
  switch (method) {
    case AssignmentMethod::kOptimalRefresh: return "optimal";
    case AssignmentMethod::kDualDab: return "dual";
    case AssignmentMethod::kWsDab: return "wsdab";
  }
  return "?";
}

const char* Name(GeneralPqHeuristic heuristic) {
  switch (heuristic) {
    case GeneralPqHeuristic::kHalfAndHalf: return "hh";
    case GeneralPqHeuristic::kDifferentSum: return "ds";
  }
  return "?";
}

const char* Name(DataDynamicsModel ddm) {
  switch (ddm) {
    case DataDynamicsModel::kMonotonic: return "mono";
    case DataDynamicsModel::kRandomWalk: return "walk";
  }
  return "?";
}

std::string PlannerConfig::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "method=%s heuristic=%s ddm=%s mu=%g duality_tol=%g",
                Name(method), Name(heuristic), Name(dual.ddm), dual.mu,
                dual.solver.duality_tol);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const PlannerConfig& config) {
  return os << config.Describe();
}

Result<QueryDabs> PlanQuery(const PolynomialQuery& query,
                            const Vector& values, const Vector& rates,
                            const PlannerConfig& config,
                            const QueryDabs* warm) {
  if (query.p.IsZero()) {
    return Status::InvalidArgument("query polynomial is zero");
  }
  obs::ScopedTimer timer(
      config.registry == nullptr
          ? nullptr
          : config.registry->GetHistogram("core.planner.plan_seconds"));
  if (config.registry != nullptr) {
    config.registry->GetCounter("core.planner.plans")->Inc();
  }
  // Linear aggregate queries have a value-independent optimal closed form
  // that never goes stale (laq.h); every method uses it.
  if (query.IsLinearAggregate()) {
    return SolveLaq(query, rates, config.dual.ddm);
  }
  return SolveGeneralPq(query, config.heuristic,
                        MakeSubSolver(values, rates, config), warm);
}

Result<QueryPlan> PlanQueryParts(const PolynomialQuery& query,
                                 const Vector& values, const Vector& rates,
                                 const PlannerConfig& config) {
  if (query.p.IsZero()) {
    return Status::InvalidArgument("query polynomial is zero");
  }
  obs::ScopedTimer timer(
      config.registry == nullptr
          ? nullptr
          : config.registry->GetHistogram("core.planner.plan_seconds"));
  if (config.registry != nullptr) {
    config.registry->GetCounter("core.planner.plans")->Inc();
  }
  QueryPlan plan;
  if (query.IsLinearAggregate()) {
    POLYDAB_ASSIGN_OR_RETURN(QueryDabs d,
                             SolveLaq(query, rates, config.dual.ddm));
    plan.parts.push_back(PlanPart{query, std::move(d)});
    TracePlannerEvent(config, obs::TraceEventKind::kPlannerPlan, query.id,
                      true);
    return plan;
  }
  POLYDAB_ASSIGN_OR_RETURN(std::vector<PolynomialQuery> subs,
                           SplitSubqueries(query, config.heuristic));
  PpqSolver solve = MakeSubSolver(values, rates, config);
  for (PolynomialQuery& sub : subs) {
    POLYDAB_ASSIGN_OR_RETURN(QueryDabs d, solve(sub, nullptr));
    plan.parts.push_back(PlanPart{std::move(sub), std::move(d)});
  }
  TracePlannerEvent(config, obs::TraceEventKind::kPlannerPlan, query.id,
                    true);
  return plan;
}

Result<QueryDabs> ReplanPart(const PlanPart& part, const Vector& values,
                             const Vector& rates,
                             const PlannerConfig& config) {
  obs::MetricRegistry* reg = config.registry;
  obs::ScopedTimer timer(
      reg == nullptr ? nullptr
                     : reg->GetHistogram("core.planner.replan_seconds"));
  Result<QueryDabs> result =
      part.subquery.IsLinearAggregate()
          ? SolveLaq(part.subquery, rates, config.dual.ddm)
          : MakeSubSolver(values, rates, config)(part.subquery, &part.dabs);
  if (reg != nullptr) {
    reg->GetCounter("core.planner.replans")->Inc();
    if (!part.subquery.IsLinearAggregate()) {
      // Every replan is warm-started from the part's previous assignment;
      // a hit is a warm solve that actually succeeded. Hit rate =
      // hits / (hits + misses).
      reg->GetCounter(result.ok() ? "core.planner.warm_start_hits"
                                  : "core.planner.warm_start_misses")
          ->Inc();
    }
  }
  TracePlannerEvent(config, obs::TraceEventKind::kPlannerReplan,
                    part.subquery.id, result.ok());
  return result;
}

std::vector<Result<QueryDabs>> ReplanParts(
    const std::vector<const PlanPart*>& parts, const Vector& values,
    const Vector& rates, const PlannerConfig& config,
    gp::SolveEngine* engine) {
  const auto t_begin = std::chrono::steady_clock::now();
  obs::MetricRegistry* reg = config.registry;
  DualDabParams dual = config.dual;
  if (dual.solver.registry == nullptr) dual.solver.registry = reg;

  const size_t np = parts.size();
  std::vector<Result<QueryDabs>> out(
      np, Result<QueryDabs>(Status::Internal("not solved")));

  // Assembly pass: closed-form parts solve inline; GP parts accumulate
  // their programs so the engine sees the whole stale set at once. The
  // method is uniform across the batch, so exactly one of the two program
  // vectors is populated.
  std::vector<size_t> gp_idx;
  std::vector<DualDabProgram> dual_progs;
  std::vector<OptimalRefreshProgram> opt_progs;
  for (size_t i = 0; i < np; ++i) {
    const PlanPart& part = *parts[i];
    if (part.subquery.IsLinearAggregate()) {
      out[i] = SolveLaq(part.subquery, rates, dual.ddm);
      continue;
    }
    switch (config.method) {
      case AssignmentMethod::kWsDab:
        out[i] = SolveWsDab(part.subquery, values);
        break;
      case AssignmentMethod::kDualDab: {
        Result<DualDabProgram> prog = BuildDualDabProgram(
            part.subquery, values, rates, dual, &part.dabs);
        if (!prog.ok()) {
          out[i] = prog.status();
          break;
        }
        gp_idx.push_back(i);
        dual_progs.push_back(std::move(prog).value());
        break;
      }
      case AssignmentMethod::kOptimalRefresh: {
        Result<OptimalRefreshProgram> prog = BuildOptimalRefreshProgram(
            part.subquery, values, rates, dual.ddm, &part.dabs);
        if (!prog.ok()) {
          out[i] = prog.status();
          break;
        }
        gp_idx.push_back(i);
        opt_progs.push_back(std::move(prog).value());
        break;
      }
    }
  }

  // One engine round-trip for every GP in the stale set.
  if (!gp_idx.empty()) {
    const bool is_dual = config.method == AssignmentMethod::kDualDab;
    std::vector<gp::SolveEngine::BatchItem> items;
    items.reserve(gp_idx.size());
    for (size_t j = 0; j < gp_idx.size(); ++j) {
      gp::SolveEngine::BatchItem item;
      if (is_dual) {
        item.problem = &dual_progs[j].gp;
        item.warm_start =
            dual_progs[j].has_warm ? &dual_progs[j].warm_x : nullptr;
      } else {
        item.problem = &opt_progs[j].gp;
        item.warm_start =
            opt_progs[j].has_warm ? &opt_progs[j].warm_x : nullptr;
      }
      items.push_back(item);
    }
    std::vector<Result<gp::GpSolution>> sols =
        engine->SolveBatch(items, dual.solver);
    for (size_t j = 0; j < gp_idx.size(); ++j) {
      if (!sols[j].ok()) {
        out[gp_idx[j]] = sols[j].status();
      } else if (is_dual) {
        out[gp_idx[j]] = ExtractDualDab(dual_progs[j], sols[j].value());
      } else {
        out[gp_idx[j]] =
            ExtractOptimalRefresh(opt_progs[j], rates, sols[j].value());
      }
    }
  }

  // Instrument totals identical to np individual ReplanPart calls: one
  // replan_seconds sample per part (an equal share of the batch wall
  // time — the histogram's count is the invariant the diff harness
  // checks; wall values are machine noise either way), one replans
  // increment per part, and a warm hit/miss per GP-method part.
  if (reg != nullptr && np > 0) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t_begin;
    const double share = dt.count() / static_cast<double>(np);
    obs::Histogram* replan_s =
        reg->GetHistogram("core.planner.replan_seconds");
    for (size_t i = 0; i < np; ++i) {
      replan_s->Record(share);
      reg->GetCounter("core.planner.replans")->Inc();
      if (!parts[i]->subquery.IsLinearAggregate()) {
        reg->GetCounter(out[i].ok() ? "core.planner.warm_start_hits"
                                    : "core.planner.warm_start_misses")
            ->Inc();
      }
    }
  }
  return out;
}

StalenessWidening WideningFor(const PolynomialQuery& query, VarId item,
                              const Vector& view) {
  StalenessWidening w;
  Polynomial d = query.p.PartialDerivative(item);
  if (d.IsZero()) {
    // The query does not read the item at all: no widening needed.
    w.boundable = true;
    w.sensitivity = 0.0;
    return w;
  }
  // Boundable iff dQ/d(item) is itself independent of the item, i.e. the
  // query has degree <= 1 in it. Then the error contributed by serving
  // the stale view value is exactly sensitivity * drift, whatever the
  // (unknown) live value does; with a higher degree the derivative
  // depends on the lost value and no finite widening is sound.
  w.boundable = d.PartialDerivative(item).IsZero();
  w.sensitivity = w.boundable ? std::fabs(d.Evaluate(view)) : 0.0;
  return w;
}

}  // namespace polydab::core
