#include "core/optimal_refresh.h"

namespace polydab::core {

Result<OptimalRefreshProgram> BuildOptimalRefreshProgram(
    const PolynomialQuery& query, const Vector& values, const Vector& rates,
    DataDynamicsModel ddm, const QueryDabs* warm) {
  OptimalRefreshProgram prog;
  prog.ddm = ddm;
  GpVarMap& map = prog.map;
  map.vars = query.p.Variables();
  map.has_secondary = false;
  const size_t k = map.vars.size();
  if (k == 0) {
    return Status::InvalidArgument("query has no variables");
  }

  gp::GpProblem& gp_problem = prog.gp;
  gp_problem.num_vars = static_cast<int>(k);
  for (size_t i = 0; i < k; ++i) {
    AddRateTerm(ddm, rates[static_cast<size_t>(map.vars[i])],
                map.BIndex(i), &gp_problem.objective);
  }
  POLYDAB_ASSIGN_OR_RETURN(
      gp::Posynomial cond,
      SingleDabCondition(query.p, values, query.qab, map));
  gp_problem.constraints.push_back(std::move(cond));

  if (warm != nullptr && warm->vars == map.vars) {
    prog.warm_x = warm->primary;
    prog.has_warm = true;
  }
  return prog;
}

QueryDabs ExtractOptimalRefresh(const OptimalRefreshProgram& prog,
                                const Vector& rates,
                                const gp::GpSolution& sol) {
  const size_t k = prog.map.vars.size();
  QueryDabs out;
  out.vars = prog.map.vars;
  out.primary = sol.x;
  out.secondary = sol.x;  // mirrors primary; see single_dab below
  out.single_dab = true;
  // Every refresh triggers a recomputation, so the modeled recompute rate
  // is the total refresh rate.
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    total += MessageRate(prog.ddm, rates[static_cast<size_t>(prog.map.vars[i])],
                         sol.x[i]);
  }
  out.recompute_rate = total;
  return out;
}

Result<QueryDabs> SolveOptimalRefresh(const PolynomialQuery& query,
                                      const Vector& values,
                                      const Vector& rates,
                                      DataDynamicsModel ddm,
                                      const gp::SolverOptions& options,
                                      const QueryDabs* warm) {
  POLYDAB_ASSIGN_OR_RETURN(
      OptimalRefreshProgram prog,
      BuildOptimalRefreshProgram(query, values, rates, ddm, warm));
  POLYDAB_ASSIGN_OR_RETURN(
      gp::GpSolution sol,
      SolveGp(prog.gp, options, prog.has_warm ? &prog.warm_x : nullptr));
  return ExtractOptimalRefresh(prog, rates, sol);
}

}  // namespace polydab::core
