#include "core/optimal_refresh.h"

namespace polydab::core {

Result<QueryDabs> SolveOptimalRefresh(const PolynomialQuery& query,
                                      const Vector& values,
                                      const Vector& rates,
                                      DataDynamicsModel ddm,
                                      const gp::SolverOptions& options,
                                      const QueryDabs* warm) {
  GpVarMap map;
  map.vars = query.p.Variables();
  map.has_secondary = false;
  const size_t k = map.vars.size();
  if (k == 0) {
    return Status::InvalidArgument("query has no variables");
  }

  gp::GpProblem gp_problem;
  gp_problem.num_vars = static_cast<int>(k);
  for (size_t i = 0; i < k; ++i) {
    AddRateTerm(ddm, rates[static_cast<size_t>(map.vars[i])],
                map.BIndex(i), &gp_problem.objective);
  }
  POLYDAB_ASSIGN_OR_RETURN(
      gp::Posynomial cond,
      SingleDabCondition(query.p, values, query.qab, map));
  gp_problem.constraints.push_back(std::move(cond));

  Vector warm_x;
  const Vector* warm_ptr = nullptr;
  if (warm != nullptr && warm->vars == map.vars) {
    warm_x = warm->primary;
    warm_ptr = &warm_x;
  }
  POLYDAB_ASSIGN_OR_RETURN(gp::GpSolution sol,
                           SolveGp(gp_problem, options, warm_ptr));

  QueryDabs out;
  out.vars = map.vars;
  out.primary = sol.x;
  out.secondary = sol.x;  // mirrors primary; see single_dab below
  out.single_dab = true;
  // Every refresh triggers a recomputation, so the modeled recompute rate
  // is the total refresh rate.
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    total += MessageRate(ddm, rates[static_cast<size_t>(map.vars[i])],
                         sol.x[i]);
  }
  out.recompute_rate = total;
  return out;
}

}  // namespace polydab::core
