#ifndef POLYDAB_CORE_DUAL_DAB_H_
#define POLYDAB_CORE_DUAL_DAB_H_

#include "common/status.h"
#include "core/condition.h"
#include "core/ddm.h"
#include "core/query.h"
#include "gp/gp_solver.h"

/// \file dual_dab.h
/// §III-A.2–A.5: the paper's central contribution. Each item gets a tight
/// primary DAB b (shipped to the source) and a wider secondary DAB c ≥ b
/// (kept at the coordinator). The primary bounds stay valid while every
/// item remains inside V ± c, so recomputations happen only on secondary
/// violations. One geometric program trades the two message streams:
///
///   minimize   Σ rate(λ_i, b_i) + μ·R
///   subject to P(V+c+b) − P(V+c) ≤ B          (validity over the range)
///              b_i ≤ c_i                       (range contains the filter)
///              rate(λ_i, c_i) ≤ R              (R = recompute rate)
///
/// μ is the modeled cost of one recomputation in messages (§III-A.3):
/// larger μ buys wider secondary ranges (fewer recomputations) with
/// slightly tighter primaries (more refreshes).

namespace polydab::core {

/// Parameters of the Dual-DAB optimization.
struct DualDabParams {
  double mu = kDefaultMu;  ///< recomputation cost in messages (μ > 0)
  DataDynamicsModel ddm = DataDynamicsModel::kMonotonic;
  gp::SolverOptions solver;
};

/// \brief Compute the Dual-DAB assignment for PPQ \p query at the current
/// \p values with per-item rate estimates \p rates (dense, by VarId).
///
/// Warm-starting with the previous assignment of the same query (from
/// before the secondary violation) typically cuts solver work severalfold.
Result<QueryDabs> SolveDualDab(const PolynomialQuery& query,
                               const Vector& values, const Vector& rates,
                               const DualDabParams& params = DualDabParams(),
                               const QueryDabs* warm = nullptr);

/// The assembled GP of one Dual-DAB solve, split out so a batch of
/// programs can be handed to `gp::SolveEngine::SolveBatch` in one call
/// (core::ReplanParts, docs/SOLVER.md). By construction
///   BuildDualDabProgram + SolveGp + ExtractDualDab  ==  SolveDualDab
/// bit for bit: Build performs exactly the assembly SolveDualDab performs
/// before its solve, and Extract exactly the read-out after it.
struct DualDabProgram {
  gp::GpProblem gp;
  GpVarMap map;
  Vector warm_x;          ///< packed (b, c, R) warm point
  bool has_warm = false;  ///< warm point accepted (vars match, R > 0)
};

Result<DualDabProgram> BuildDualDabProgram(const PolynomialQuery& query,
                                           const Vector& values,
                                           const Vector& rates,
                                           const DualDabParams& params,
                                           const QueryDabs* warm);

QueryDabs ExtractDualDab(const DualDabProgram& prog,
                         const gp::GpSolution& sol);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_DUAL_DAB_H_
