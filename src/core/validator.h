#ifndef POLYDAB_CORE_VALIDATOR_H_
#define POLYDAB_CORE_VALIDATOR_H_

#include "common/status.h"
#include "core/planner.h"
#include "core/query.h"

/// \file validator.h
/// Independent verification of Condition 1 (§I-B): given an assignment,
/// compute the worst query drift it permits and compare against the QAB.
/// The checks are deliberately implemented without the condition builders
/// of condition.h (they evaluate the polynomial at worst-case corners
/// directly), so they can catch bugs in the optimization pipeline — the
/// simulator runs them after every recomputation in paranoid mode, and the
/// property tests lean on them.

namespace polydab::core {

/// \brief Worst-case drift a positive-coefficient polynomial \p p can
/// exhibit while its dual-DAB assignment \p d is honoured: the coordinator
/// sits anywhere within ±c of \p values and the source up to ±b further.
/// For positive data and positive coefficients the maximum is at the top
/// corner: P(V+c+b) − P(V+c).
double PpqWorstDrift(const Polynomial& p, const Vector& values,
                     const QueryDabs& d);

/// \brief Upper bound on the worst |drift| of a *general* query under
/// assignment \p d: split P = P1 − P2 and add the parts' worst drifts
/// (exact when the parts are independent; safe upper bound otherwise).
double GeneralWorstDriftBound(const Polynomial& p, const Vector& values,
                              const QueryDabs& d);

/// \brief Check Condition 1 for one plan part *at the values it was
/// planned against*: its assignment must keep the part's sub-query within
/// its sub-QAB at the worst corner of the validity range.
///
/// \param tol relative slack for solver tolerance (the optimum sits on
///        the constraint boundary).
Status ValidatePart(const PlanPart& part, const Vector& values,
                    double tol = 1e-4);

/// \brief Check Condition 1 for a full plan whose parts were all planned
/// at \p values (e.g. right after PlanQueryParts). Because the planner's
/// decompositions (HH, DS) are drift-sound by construction, part-wise
/// validity implies query-wise validity.
Status ValidatePlan(const QueryPlan& plan, const Vector& values,
                    double tol = 1e-4);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_VALIDATOR_H_
