#ifndef POLYDAB_CORE_BASELINE_H_
#define POLYDAB_CORE_BASELINE_H_

#include "common/status.h"
#include "core/query.h"

/// \file baseline.h
/// "WSDAB": the per-item sufficient-condition comparator adapted from the
/// geometric monitoring approach of Sharfman et al. [5], as characterized
/// in §V-A of the paper — instead of the single necessary-and-sufficient
/// condition, it enforces n sufficient conditions, one per data item,
/// which yields more stringent DABs (hence more refreshes). Like Optimal
/// Refresh it is a single-DAB scheme: every refresh invalidates the
/// assignment, so every refresh triggers a recomputation.

namespace polydab::core {

/// \brief Assign single DABs to PPQ \p query by splitting the QAB equally
/// across its data items and bounding each item's individual worst-case
/// contribution, then conservatively scaling the vector down until the
/// joint condition P(V+b) − P(V) ≤ B holds (cross terms make the per-item
/// split alone insufficient). Rates of change are deliberately unused —
/// the baseline, like [5], has no way to exploit them.
Result<QueryDabs> SolveWsDab(const PolynomialQuery& query,
                             const Vector& values);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_BASELINE_H_
