#ifndef POLYDAB_CORE_DDM_H_
#define POLYDAB_CORE_DDM_H_

#include <algorithm>

#include "gp/posynomial.h"

/// \file ddm.h
/// Data-dynamics models (§III-A.1 / §III-A.5). The ddm only enters the
/// optimization through the modeled rate of messages caused by a filter of
/// width w on an item whose estimated rate of change is lambda:
///   monotonic drift:  lambda / w     refreshes per unit time
///   random walk:      lambda² / w²   refreshes per unit time (from [4])

namespace polydab::core {

enum class DataDynamicsModel {
  kMonotonic,
  kRandomWalk,
};

/// Smallest rate used in objectives so static items still yield valid
/// posynomial terms (GP coefficients must be positive).
inline constexpr double kMinRate = 1e-9;

/// The canonical default for μ, the modeled cost of one DAB recomputation
/// in refresh messages (§III-A.3, §V-A uses μ = 5 throughout). The single
/// source of truth shared by DualDabParams, the TotalCost metric, the
/// bench harnesses, and polydab_experiment — sweep points that deviate do
/// so explicitly.
inline constexpr double kDefaultMu = 5.0;

/// Modeled message rate for filter width \p w under \p ddm.
inline double MessageRate(DataDynamicsModel ddm, double lambda, double w) {
  const double l = std::max(lambda, kMinRate);
  return ddm == DataDynamicsModel::kMonotonic ? l / w : (l * l) / (w * w);
}

/// Append the objective term for one filter: lambda·w⁻¹ or lambda²·w⁻².
inline void AddRateTerm(DataDynamicsModel ddm, double lambda, int gp_var,
                        gp::Posynomial* obj) {
  const double l = std::max(lambda, kMinRate);
  if (ddm == DataDynamicsModel::kMonotonic) {
    obj->AddTerm(l, {{gp_var, -1.0}});
  } else {
    obj->AddTerm(l * l, {{gp_var, -2.0}});
  }
}

/// Append the constraint rate(lambda, c) ≤ R as a posynomial "≤ 1":
/// lambda·c⁻¹·R⁻¹ or lambda²·c⁻²·R⁻¹... — see note: for the random walk we
/// keep R in units of events/time, so the constraint is lambda²·c⁻²·R⁻¹.
inline void AddRecomputeBound(DataDynamicsModel ddm, double lambda, int c_var,
                              int r_var, gp::Posynomial* constraint) {
  const double l = std::max(lambda, kMinRate);
  if (ddm == DataDynamicsModel::kMonotonic) {
    constraint->AddTerm(l, {{c_var, -1.0}, {r_var, -1.0}});
  } else {
    constraint->AddTerm(l * l, {{c_var, -2.0}, {r_var, -1.0}});
  }
}

}  // namespace polydab::core

#endif  // POLYDAB_CORE_DDM_H_
