#ifndef POLYDAB_CORE_QUERY_INDEX_H_
#define POLYDAB_CORE_QUERY_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/query.h"

/// \file query_index.h
/// Coordinator-side evaluation machinery. A coordinator hosting hundreds
/// of polynomial queries re-evaluates, on every refresh, each query that
/// references the refreshed item (to decide user notifications and check
/// QABs). Doing that from scratch costs O(total terms); the structures
/// here make it O(terms containing the item).

namespace polydab::core {

/// \brief Immutable inverted index: data item -> queries referencing it.
class QueryIndex {
 public:
  QueryIndex(const std::vector<PolynomialQuery>& queries, size_t num_items);

  /// Queries whose polynomial references \p item (indices into the
  /// original vector).
  const std::vector<int>& QueriesWithItem(VarId item) const {
    return item_queries_[static_cast<size_t>(item)];
  }

  size_t num_items() const { return item_queries_.size(); }
  size_t num_queries() const { return query_ids_.size(); }

  /// Mean number of queries a single item update touches (load metric).
  double MeanFanout() const;

  /// Partition the queries across \p num_shards coordinator lanes by a
  /// mixed hash of the query id. Cheap and balanced, but two queries
  /// sharing an item may land on different lanes, so per-item EQI merges
  /// become cross-shard work. Returned vector is indexed like the
  /// constructor's query vector; entries are in [0, num_shards).
  std::vector<int> ShardByQueryId(int num_shards) const;

  /// EQI-aware partition: queries connected through shared items (the
  /// transitive closure of "references a common item") always land on the
  /// same lane, so every per-item min-DAB merge is lane-local. Components
  /// are hashed by their smallest query id; a workload that is one big
  /// component degenerates to a single lane — by design, since such a
  /// workload has no coordinator work that can proceed independently.
  std::vector<int> ShardByComponent(int num_shards) const;

 private:
  std::vector<std::vector<int>> item_queries_;
  std::vector<int32_t> query_ids_;  ///< PolynomialQuery::id by query index
};

/// \brief Maintains the value of every query under single-item updates.
///
/// On Update(item, v), only the terms that contain the item are
/// re-evaluated (against the current values of the other items), and the
/// affected query values are adjusted by the difference. Floating-point
/// drift from long delta chains is bounded by calling Rebase()
/// periodically (the evaluator does so automatically every
/// kAutoRebaseUpdates updates).
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(std::vector<PolynomialQuery> queries,
                       Vector initial_values);

  /// Install a new value for \p item and patch affected query values.
  void Update(VarId item, double value);

  /// Append a query registered at runtime (service churn). The new query
  /// is evaluated once against the current item values; existing query
  /// values — and their accumulated delta-chain drift — are untouched, so
  /// a run that registers queries mid-stream stays bit-identical to one
  /// that never churns for all pre-existing queries. Departed queries are
  /// intentionally kept (their values are simply never read again):
  /// erasing them would renumber query indices held by callers.
  void AddQuery(const PolynomialQuery& query);

  /// Current value of query \p qi under all updates so far.
  double QueryValue(size_t qi) const { return query_values_[qi]; }

  /// Current item values as seen by the evaluator.
  const Vector& values() const { return values_; }

  /// Exactly recompute every query value from the current item values.
  void Rebase();

  size_t num_queries() const { return queries_.size(); }

  /// Updates processed between automatic exact recomputations.
  static constexpr int64_t kAutoRebaseUpdates = 1 << 16;

  /// Crash-recovery checkpoint support (src/recovery/): expose / reinstate
  /// the drift-carrying internals bit-exactly. A restored evaluator must
  /// be constructed with the same query vector (including dead slots —
  /// they are never erased) before RestoreState overwrites the values.
  int64_t updates_since_rebase() const { return updates_since_rebase_; }
  void RestoreState(Vector values, Vector query_values,
                    int64_t updates_since_rebase) {
    values_ = std::move(values);
    query_values_ = std::move(query_values);
    updates_since_rebase_ = updates_since_rebase;
  }

 private:
  std::vector<PolynomialQuery> queries_;
  QueryIndex index_;
  Vector values_;
  Vector query_values_;
  int64_t updates_since_rebase_ = 0;
};

/// \brief EQI components under runtime query churn (docs/SERVICE.md).
///
/// The static QueryIndex partitions a fixed query set once; the service
/// layer instead registers and deregisters queries while the coordinator
/// runs, and needs the EQI component structure — which drives both the
/// per-item min-DAB merges and the component-hash shard assignment —
/// maintained across every churn event. Slots are append-only stable
/// indices (a departed query's slot stays allocated, marked dead), so
/// callers can keep slot-indexed side tables.
///
/// Two maintenance modes with identical observable state:
///  * kIncremental — registration merges every component reachable
///    through a shared item (a relabel of component mins); departure
///    re-derives connectivity only inside the departed query's component.
///  * kRebuild — the checked fallback: every churn event re-runs the
///    same global union-find as QueryIndex::ShardByComponent.
/// Components are labelled by their smallest live query id, a
/// content-determined property, so both modes agree bit-for-bit — the
/// churn differential test and the tracecheck plan_patch invariant both
/// hold them to that.
class DynamicQueryIndex {
 public:
  enum class Maintenance { kIncremental, kRebuild };

  DynamicQueryIndex(size_t num_items, Maintenance mode);

  /// Register a query; its slot is the current num_slots().
  void AddQuery(int32_t query_id, const std::vector<VarId>& items);

  /// Deregister the query in \p slot (must be alive).
  void RemoveQuery(int slot);

  size_t num_slots() const { return slot_ids_.size(); }
  size_t num_active() const;
  size_t num_components() const;
  bool alive(int slot) const {
    return alive_[static_cast<size_t>(slot)] != 0;
  }
  int32_t query_id(int slot) const {
    return slot_ids_[static_cast<size_t>(slot)];
  }

  /// Smallest live query id in the slot's component; INT32_MAX for dead
  /// slots.
  int32_t ComponentMin(int slot) const {
    return comp_min_[static_cast<size_t>(slot)];
  }

  /// Per-slot lane assignment (dead slots -1). \p by_component selects
  /// the EQI-aware policy (hash of the component min, matching
  /// QueryIndex::ShardByComponent); otherwise the query-id hash policy
  /// (matching ShardByQueryId).
  std::vector<int> ShardAssignment(int num_shards, bool by_component) const;

 private:
  void RecomputeComponents();

  Maintenance mode_;
  std::vector<std::vector<int>> item_slots_;     ///< live slots per item
  std::vector<std::vector<VarId>> slot_items_;   ///< items per slot
  std::vector<int32_t> slot_ids_;                ///< query id per slot
  std::vector<uint8_t> alive_;
  std::vector<int32_t> comp_min_;
};

}  // namespace polydab::core

#endif  // POLYDAB_CORE_QUERY_INDEX_H_
