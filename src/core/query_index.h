#ifndef POLYDAB_CORE_QUERY_INDEX_H_
#define POLYDAB_CORE_QUERY_INDEX_H_

#include <vector>

#include "common/status.h"
#include "core/query.h"

/// \file query_index.h
/// Coordinator-side evaluation machinery. A coordinator hosting hundreds
/// of polynomial queries re-evaluates, on every refresh, each query that
/// references the refreshed item (to decide user notifications and check
/// QABs). Doing that from scratch costs O(total terms); the structures
/// here make it O(terms containing the item).

namespace polydab::core {

/// \brief Immutable inverted index: data item -> queries referencing it.
class QueryIndex {
 public:
  QueryIndex(const std::vector<PolynomialQuery>& queries, size_t num_items);

  /// Queries whose polynomial references \p item (indices into the
  /// original vector).
  const std::vector<int>& QueriesWithItem(VarId item) const {
    return item_queries_[static_cast<size_t>(item)];
  }

  size_t num_items() const { return item_queries_.size(); }

  /// Mean number of queries a single item update touches (load metric).
  double MeanFanout() const;

 private:
  std::vector<std::vector<int>> item_queries_;
};

/// \brief Maintains the value of every query under single-item updates.
///
/// On Update(item, v), only the terms that contain the item are
/// re-evaluated (against the current values of the other items), and the
/// affected query values are adjusted by the difference. Floating-point
/// drift from long delta chains is bounded by calling Rebase()
/// periodically (the evaluator does so automatically every
/// kAutoRebaseUpdates updates).
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(std::vector<PolynomialQuery> queries,
                       Vector initial_values);

  /// Install a new value for \p item and patch affected query values.
  void Update(VarId item, double value);

  /// Current value of query \p qi under all updates so far.
  double QueryValue(size_t qi) const { return query_values_[qi]; }

  /// Current item values as seen by the evaluator.
  const Vector& values() const { return values_; }

  /// Exactly recompute every query value from the current item values.
  void Rebase();

  size_t num_queries() const { return queries_.size(); }

  /// Updates processed between automatic exact recomputations.
  static constexpr int64_t kAutoRebaseUpdates = 1 << 16;

 private:
  std::vector<PolynomialQuery> queries_;
  QueryIndex index_;
  Vector values_;
  Vector query_values_;
  int64_t updates_since_rebase_ = 0;
};

}  // namespace polydab::core

#endif  // POLYDAB_CORE_QUERY_INDEX_H_
