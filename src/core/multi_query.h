#ifndef POLYDAB_CORE_MULTI_QUERY_H_
#define POLYDAB_CORE_MULTI_QUERY_H_

#include <vector>

#include "common/status.h"
#include "core/dual_dab.h"
#include "core/query.h"

/// \file multi_query.h
/// §IV: handling many PQs at one coordinator.
///
/// * EQI ("Each Query Independently") solves each query on its own and the
///   coordinator installs, per data item, the *minimum* primary DAB across
///   queries. Each query keeps its own secondary DABs for validity
///   checking. Tightening a primary below a query's solved value preserves
///   that query's correctness (the condition is monotone in b), so EQI is
///   safe, merely sub-optimal.
///
/// * AAO ("All At Once") solves one joint geometric program: a single
///   primary DAB per item shared by all queries, one secondary DAB per
///   <query, item> pair, and one recompute rate R_q per query. Optimal,
///   but the variable count grows with the number of queries, which is why
///   the paper (and this library) uses it only for small query sets.

namespace polydab::core {

/// Joint AAO solution.
struct AaoSolution {
  std::vector<VarId> vars;   ///< union of all query variables, sorted
  Vector item_primary;       ///< shared per-item primary DABs (b), by vars
  std::vector<QueryDabs> per_query;  ///< per-query view: shared b, own c, R
};

/// \brief Per-item minimum primary DAB across independently solved queries
/// (the EQI merge). Items not referenced by any query get +infinity (no
/// filter installed).
Vector MergeMinPrimary(const std::vector<QueryDabs>& assignments,
                       size_t num_items);

/// \brief Solve the joint AAO geometric program for positive-coefficient
/// queries \p queries (§IV). All queries must be PPQs with ≥1 variable.
///
/// \p warm optionally supplies a previous joint solution for the same
/// query set (e.g. the last periodic AAO-T solve, Figure 7); it is used
/// to warm-start the GP when its shape matches.
Result<AaoSolution> SolveAao(const std::vector<PolynomialQuery>& queries,
                             const Vector& values, const Vector& rates,
                             const DualDabParams& params = DualDabParams(),
                             const AaoSolution* warm = nullptr);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_MULTI_QUERY_H_
