#include "core/laq.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gp/gp_solver.h"

namespace polydab::core {

Result<QueryDabs> SolveLaq(const PolynomialQuery& query, const Vector& rates,
                           DataDynamicsModel ddm) {
  if (query.qab <= 0.0) {
    return Status::InvalidArgument("QAB must be positive");
  }
  if (query.p.Degree() > 1) {
    return Status::InvalidArgument(
        "SolveLaq requires a degree-1 query; use the PQ solvers otherwise");
  }
  QueryDabs out;
  out.vars = query.p.Variables();
  const size_t k = out.vars.size();
  if (k == 0) {
    return Status::InvalidArgument("query has no variables");
  }

  // Collect |w_i| per variable (canonical form has one term per variable).
  Vector weights(k, 0.0);
  for (const Monomial& t : query.p.terms()) {
    if (t.powers().empty()) continue;  // constant offset: no drift
    for (size_t i = 0; i < k; ++i) {
      if (t.powers()[0].first == out.vars[i]) {
        weights[i] = std::fabs(t.coef());
        break;
      }
    }
  }

  out.primary.resize(k);
  double denom = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double lambda =
        std::max(rates[static_cast<size_t>(out.vars[i])], kMinRate);
    const double shape =
        ddm == DataDynamicsModel::kMonotonic
            ? std::sqrt(lambda / weights[i])
            : std::cbrt(lambda * lambda / weights[i]);
    out.primary[i] = shape;
    denom += weights[i] * shape;
  }
  const double scale = query.qab / denom;
  for (double& b : out.primary) b *= scale;

  out.secondary = out.primary;
  out.recompute_rate = 0.0;
  out.never_stale = true;  // the linear condition is value-independent
  return out;
}


Result<MultiLaqSolution> SolveMultiLaq(
    const std::vector<PolynomialQuery>& queries, const Vector& rates,
    DataDynamicsModel ddm) {
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query");
  }
  std::set<VarId> var_set;
  for (const PolynomialQuery& q : queries) {
    if (q.qab <= 0.0) {
      return Status::InvalidArgument("QAB must be positive");
    }
    if (q.p.Degree() > 1) {
      return Status::InvalidArgument("SolveMultiLaq requires degree-1 queries");
    }
    for (VarId v : q.p.Variables()) var_set.insert(v);
  }
  MultiLaqSolution out;
  out.vars.assign(var_set.begin(), var_set.end());
  if (out.vars.empty()) {
    return Status::InvalidArgument("queries reference no variables");
  }
  auto index_of = [&out](VarId v) {
    return static_cast<int>(
        std::lower_bound(out.vars.begin(), out.vars.end(), v) -
        out.vars.begin());
  };

  gp::GpProblem gp_problem;
  gp_problem.num_vars = static_cast<int>(out.vars.size());
  for (size_t i = 0; i < out.vars.size(); ++i) {
    AddRateTerm(ddm, rates[static_cast<size_t>(out.vars[i])],
                static_cast<int>(i), &gp_problem.objective);
  }
  // One linear constraint per query: sum |w_j| b_j / B <= 1.
  for (const PolynomialQuery& q : queries) {
    gp::Posynomial cond;
    for (const Monomial& t : q.p.terms()) {
      if (t.powers().empty()) continue;  // constant offset: no drift
      cond.AddTerm(std::fabs(t.coef()) / q.qab,
                   {{index_of(t.powers()[0].first), 1.0}});
    }
    if (!cond.empty()) gp_problem.constraints.push_back(std::move(cond));
  }

  POLYDAB_ASSIGN_OR_RETURN(gp::GpSolution sol, SolveGp(gp_problem));
  out.dabs = sol.x;
  out.total_rate = 0.0;
  for (size_t i = 0; i < out.vars.size(); ++i) {
    out.total_rate += MessageRate(
        ddm, rates[static_cast<size_t>(out.vars[i])], out.dabs[i]);
  }
  return out;
}

}  // namespace polydab::core
