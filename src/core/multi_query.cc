#include "core/multi_query.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/condition.h"

namespace polydab::core {

Vector MergeMinPrimary(const std::vector<QueryDabs>& assignments,
                       size_t num_items) {
  Vector out(num_items, std::numeric_limits<double>::infinity());
  for (const QueryDabs& a : assignments) {
    for (size_t i = 0; i < a.vars.size(); ++i) {
      const size_t v = static_cast<size_t>(a.vars[i]);
      out[v] = std::min(out[v], a.primary[i]);
    }
  }
  return out;
}

Result<AaoSolution> SolveAao(const std::vector<PolynomialQuery>& queries,
                             const Vector& values, const Vector& rates,
                             const DualDabParams& params,
                             const AaoSolution* warm) {
  if (queries.empty()) {
    return Status::InvalidArgument("AAO needs at least one query");
  }
  if (params.mu <= 0.0) {
    return Status::InvalidArgument("mu must be positive");
  }

  // Union of variables -> shared primary index.
  std::set<VarId> var_set;
  for (const PolynomialQuery& q : queries) {
    if (!q.IsPositiveCoefficient()) {
      return Status::InvalidArgument(
          "AAO handles positive-coefficient queries; reduce general "
          "queries with a heuristic first");
    }
    for (VarId v : q.p.Variables()) var_set.insert(v);
  }
  std::vector<VarId> vars(var_set.begin(), var_set.end());
  if (vars.empty()) {
    return Status::InvalidArgument("queries reference no variables");
  }
  auto shared_index = [&vars](VarId v) {
    return static_cast<int>(
        std::lower_bound(vars.begin(), vars.end(), v) - vars.begin());
  };

  // GP variable layout:
  //   [0, n)                      shared primary DABs b_x
  //   per query q with k_q vars:  k_q secondary DABs c_{q,x}, then R_q
  const int n = static_cast<int>(vars.size());
  int next = n;
  struct QueryBlock {
    int c_base = 0;
    int r_index = 0;
    std::vector<VarId> qvars;
  };
  std::vector<QueryBlock> blocks(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    blocks[qi].qvars = queries[qi].p.Variables();
    blocks[qi].c_base = next;
    next += static_cast<int>(blocks[qi].qvars.size());
    blocks[qi].r_index = next++;
  }

  gp::GpProblem gp_problem;
  gp_problem.num_vars = next;

  // Objective: refresh stream over shared primaries + mu * sum of R_q.
  for (int i = 0; i < n; ++i) {
    AddRateTerm(params.ddm, rates[static_cast<size_t>(vars[static_cast<size_t>(i)])],
                i, &gp_problem.objective);
  }
  for (const QueryBlock& blk : blocks) {
    gp_problem.objective.AddTerm(params.mu, {{blk.r_index, 1.0}});
  }
  // Vanishing cost on every secondary width: linear-only items cancel out
  // of their validity conditions and would otherwise leave the GP
  // unbounded along their c-rays (see dual_dab.cc).
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const QueryBlock& blk = blocks[qi];
    for (size_t i = 0; i < blk.qvars.size(); ++i) {
      gp_problem.objective.AddTerm(
          1e-6 / values[static_cast<size_t>(blk.qvars[i])],
          {{blk.c_base + static_cast<int>(i), 1.0}});
    }
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const QueryBlock& blk = blocks[qi];
    const size_t k = blk.qvars.size();

    // Per-query validity condition. Build it with a local GpVarMap (b at
    // 0..k-1, c at k..2k-1) and remap indices into the joint layout.
    GpVarMap local;
    local.vars = blk.qvars;
    local.has_secondary = true;
    POLYDAB_ASSIGN_OR_RETURN(
        gp::Posynomial local_cond,
        DualDabCondition(queries[qi].p, values, queries[qi].qab, local));
    gp::Posynomial cond;
    for (const gp::GpTerm& t : local_cond.terms()) {
      std::vector<std::pair<int, double>> exps;
      exps.reserve(t.exponents.size());
      for (const auto& [var, exp] : t.exponents) {
        if (var < static_cast<int>(k)) {
          exps.emplace_back(shared_index(blk.qvars[static_cast<size_t>(var)]),
                            exp);
        } else {
          exps.emplace_back(blk.c_base + (var - static_cast<int>(k)), exp);
        }
      }
      cond.AddTerm(t.coef, std::move(exps));
    }
    gp_problem.constraints.push_back(std::move(cond));

    // b_x <= c_{q,x} and rate(lambda_x, c_{q,x}) <= R_q.
    for (size_t i = 0; i < k; ++i) {
      const int b_idx = shared_index(blk.qvars[i]);
      const int c_idx = blk.c_base + static_cast<int>(i);
      gp::Posynomial bc;
      bc.AddTerm(1.0, {{b_idx, 1.0}, {c_idx, -1.0}});
      gp_problem.constraints.push_back(std::move(bc));
      gp::Posynomial rec;
      AddRecomputeBound(params.ddm,
                        rates[static_cast<size_t>(blk.qvars[i])], c_idx,
                        blk.r_index, &rec);
      gp_problem.constraints.push_back(std::move(rec));
    }
  }

  // Rebuild the joint warm-start vector when the previous solution has the
  // same shape (same query set between periodic solves).
  Vector warm_x;
  const Vector* warm_ptr = nullptr;
  if (warm != nullptr && warm->vars == vars &&
      warm->per_query.size() == queries.size()) {
    warm_x.resize(static_cast<size_t>(next));
    bool shape_ok = true;
    for (int i = 0; i < n; ++i) {
      warm_x[static_cast<size_t>(i)] = warm->item_primary[static_cast<size_t>(i)];
    }
    for (size_t qi = 0; qi < queries.size() && shape_ok; ++qi) {
      const QueryBlock& blk = blocks[qi];
      const QueryDabs& prev = warm->per_query[qi];
      if (prev.vars != blk.qvars || prev.recompute_rate <= 0.0) {
        shape_ok = false;
        break;
      }
      for (size_t i = 0; i < blk.qvars.size(); ++i) {
        warm_x[static_cast<size_t>(blk.c_base) + i] = prev.secondary[i];
      }
      warm_x[static_cast<size_t>(blk.r_index)] = prev.recompute_rate;
    }
    if (shape_ok) warm_ptr = &warm_x;
  }

  POLYDAB_ASSIGN_OR_RETURN(gp::GpSolution sol,
                           SolveGp(gp_problem, params.solver, warm_ptr));

  AaoSolution out;
  out.vars = vars;
  out.item_primary.assign(sol.x.begin(), sol.x.begin() + n);
  out.per_query.resize(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const QueryBlock& blk = blocks[qi];
    QueryDabs& qd = out.per_query[qi];
    qd.vars = blk.qvars;
    qd.primary.resize(blk.qvars.size());
    qd.secondary.resize(blk.qvars.size());
    for (size_t i = 0; i < blk.qvars.size(); ++i) {
      qd.primary[i] =
          sol.x[static_cast<size_t>(shared_index(blk.qvars[i]))];
      qd.secondary[i] = sol.x[static_cast<size_t>(blk.c_base) + i];
      if (qd.secondary[i] < qd.primary[i]) qd.secondary[i] = qd.primary[i];
    }
    qd.recompute_rate = sol.x[static_cast<size_t>(blk.r_index)];
  }
  return out;
}

}  // namespace polydab::core
