#include "core/query_index.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace polydab::core {

QueryIndex::QueryIndex(const std::vector<PolynomialQuery>& queries,
                       size_t num_items)
    : item_queries_(num_items) {
  query_ids_.reserve(queries.size());
  for (const PolynomialQuery& q : queries) query_ids_.push_back(q.id);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (VarId v : queries[qi].p.Variables()) {
      POLYDAB_CHECK(static_cast<size_t>(v) < num_items);
      item_queries_[static_cast<size_t>(v)].push_back(static_cast<int>(qi));
    }
  }
}

std::vector<int> QueryIndex::ShardByQueryId(int num_shards) const {
  POLYDAB_CHECK(num_shards >= 1);
  std::vector<int> shard(query_ids_.size());
  for (size_t qi = 0; qi < query_ids_.size(); ++qi) {
    shard[qi] = static_cast<int>(Mix64(static_cast<uint64_t>(
                    static_cast<int64_t>(query_ids_[qi]))) %
                static_cast<uint64_t>(num_shards));
  }
  return shard;
}

std::vector<int> QueryIndex::ShardByComponent(int num_shards) const {
  POLYDAB_CHECK(num_shards >= 1);
  // Union-find over query indices; each item's fanout list is one clique.
  std::vector<int> parent(query_ids_.size());
  for (size_t qi = 0; qi < parent.size(); ++qi) parent[qi] = static_cast<int>(qi);
  auto find = [&parent](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const auto& qs : item_queries_) {
    for (size_t i = 1; i < qs.size(); ++i) {
      const int a = find(qs[0]);
      const int b = find(qs[i]);
      if (a != b) parent[static_cast<size_t>(b)] = a;
    }
  }
  // Hash each component by its smallest member's query id so the
  // assignment is stable under query reordering.
  std::vector<int32_t> min_id(query_ids_.size(), INT32_MAX);
  for (size_t qi = 0; qi < query_ids_.size(); ++qi) {
    const size_t root = static_cast<size_t>(find(static_cast<int>(qi)));
    if (query_ids_[qi] < min_id[root]) min_id[root] = query_ids_[qi];
  }
  std::vector<int> shard(query_ids_.size());
  for (size_t qi = 0; qi < query_ids_.size(); ++qi) {
    const size_t root = static_cast<size_t>(find(static_cast<int>(qi)));
    shard[qi] = static_cast<int>(Mix64(static_cast<uint64_t>(
                    static_cast<int64_t>(min_id[root]))) %
                static_cast<uint64_t>(num_shards));
  }
  return shard;
}

double QueryIndex::MeanFanout() const {
  if (item_queries_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& qs : item_queries_) total += qs.size();
  return static_cast<double>(total) /
         static_cast<double>(item_queries_.size());
}

IncrementalEvaluator::IncrementalEvaluator(
    std::vector<PolynomialQuery> queries, Vector initial_values)
    : queries_(std::move(queries)),
      index_(queries_, initial_values.size()),
      values_(std::move(initial_values)) {
  query_values_.resize(queries_.size());
  Rebase();
}

void IncrementalEvaluator::Update(VarId item, double value) {
  POLYDAB_CHECK(static_cast<size_t>(item) < values_.size());
  const double old_value = values_[static_cast<size_t>(item)];
  if (old_value == value) return;
  // Patch each affected query by the change in the terms containing the
  // item: evaluate those terms at the new value minus at the old value
  // (all other items unchanged).
  for (int qi : index_.QueriesWithItem(item)) {
    double delta = 0.0;
    for (const Monomial& t : queries_[static_cast<size_t>(qi)].p.terms()) {
      const int e = t.ExponentOf(item);
      if (e == 0) continue;
      // term(new)/term(old) differ only in the item's power.
      double rest = t.coef();
      for (const auto& [var, exp] : t.powers()) {
        if (var == item) continue;
        double p = 1.0;
        for (int k = 0; k < exp; ++k) p *= values_[static_cast<size_t>(var)];
        rest *= p;
      }
      double old_pow = 1.0, new_pow = 1.0;
      for (int k = 0; k < e; ++k) {
        old_pow *= old_value;
        new_pow *= value;
      }
      delta += rest * (new_pow - old_pow);
    }
    query_values_[static_cast<size_t>(qi)] += delta;
  }
  values_[static_cast<size_t>(item)] = value;
  if (++updates_since_rebase_ >= kAutoRebaseUpdates) Rebase();
}

void IncrementalEvaluator::Rebase() {
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    query_values_[qi] = queries_[qi].p.Evaluate(values_);
  }
  updates_since_rebase_ = 0;
}

void IncrementalEvaluator::AddQuery(const PolynomialQuery& query) {
  queries_.push_back(query);
  index_ = QueryIndex(queries_, values_.size());
  // Only the new query needs evaluating; rebasing here would silently
  // reset the accumulated drift of the existing delta chains, changing
  // every later QueryValue bit pattern relative to a run where the query
  // was present from the start of the chain.
  query_values_.push_back(query.p.Evaluate(values_));
}

DynamicQueryIndex::DynamicQueryIndex(size_t num_items, Maintenance mode)
    : mode_(mode), item_slots_(num_items) {}

void DynamicQueryIndex::AddQuery(int32_t query_id,
                                 const std::vector<VarId>& items) {
  const int slot = static_cast<int>(slot_ids_.size());
  slot_ids_.push_back(query_id);
  slot_items_.push_back(items);
  alive_.push_back(1);
  comp_min_.push_back(query_id);
  if (mode_ == Maintenance::kRebuild) {
    for (VarId v : items) {
      POLYDAB_CHECK(static_cast<size_t>(v) < item_slots_.size());
      item_slots_[static_cast<size_t>(v)].push_back(slot);
    }
    RecomputeComponents();
    return;
  }
  // Incremental merge: every EQI component touched through a shared item
  // collapses into one, labelled by the smallest live query id. Components
  // are identified by their current min (unique per component), so the
  // merge is a relabel of the affected mins.
  int32_t merged_min = query_id;
  std::vector<int32_t> touched;
  for (VarId v : items) {
    POLYDAB_CHECK(static_cast<size_t>(v) < item_slots_.size());
    for (int other : item_slots_[static_cast<size_t>(v)]) {
      const int32_t m = comp_min_[static_cast<size_t>(other)];
      if (std::find(touched.begin(), touched.end(), m) == touched.end()) {
        touched.push_back(m);
        if (m < merged_min) merged_min = m;
      }
    }
  }
  if (!touched.empty()) {
    for (size_t s = 0; s < comp_min_.size(); ++s) {
      if (!alive_[s]) continue;
      if (std::find(touched.begin(), touched.end(), comp_min_[s]) !=
          touched.end()) {
        comp_min_[s] = merged_min;
      }
    }
  }
  comp_min_[static_cast<size_t>(slot)] = merged_min;
  for (VarId v : items) {
    item_slots_[static_cast<size_t>(v)].push_back(slot);
  }
}

void DynamicQueryIndex::RemoveQuery(int slot) {
  POLYDAB_CHECK(static_cast<size_t>(slot) < slot_ids_.size());
  POLYDAB_CHECK(alive_[static_cast<size_t>(slot)]);
  const int32_t old_min = comp_min_[static_cast<size_t>(slot)];
  alive_[static_cast<size_t>(slot)] = 0;
  comp_min_[static_cast<size_t>(slot)] = INT32_MAX;
  for (VarId v : slot_items_[static_cast<size_t>(slot)]) {
    auto& qs = item_slots_[static_cast<size_t>(v)];
    qs.erase(std::remove(qs.begin(), qs.end(), slot), qs.end());
  }
  if (mode_ == Maintenance::kRebuild) {
    RecomputeComponents();
    return;
  }
  // Incremental split: only the departed query's component can fall
  // apart. Re-derive connectivity among its remaining members (every
  // slot sharing an item with a member is itself a member, so the walk
  // never leaves the old component).
  std::vector<char> visited(slot_ids_.size(), 0);
  std::vector<int> frontier;
  for (size_t s = 0; s < slot_ids_.size(); ++s) {
    if (!alive_[s] || comp_min_[s] != old_min || visited[s]) continue;
    frontier.assign(1, static_cast<int>(s));
    visited[s] = 1;
    int32_t new_min = slot_ids_[s];
    std::vector<int> members;
    while (!frontier.empty()) {
      const int cur = frontier.back();
      frontier.pop_back();
      members.push_back(cur);
      if (slot_ids_[static_cast<size_t>(cur)] < new_min) {
        new_min = slot_ids_[static_cast<size_t>(cur)];
      }
      for (VarId v : slot_items_[static_cast<size_t>(cur)]) {
        for (int other : item_slots_[static_cast<size_t>(v)]) {
          if (visited[static_cast<size_t>(other)]) continue;
          visited[static_cast<size_t>(other)] = 1;
          frontier.push_back(other);
        }
      }
    }
    for (int m : members) comp_min_[static_cast<size_t>(m)] = new_min;
  }
}

void DynamicQueryIndex::RecomputeComponents() {
  // From-scratch union-find over live slots, mirroring
  // QueryIndex::ShardByComponent so incremental maintenance has an exact
  // oracle to agree with.
  std::vector<int> parent(slot_ids_.size());
  for (size_t s = 0; s < parent.size(); ++s) parent[s] = static_cast<int>(s);
  auto find = [&parent](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const auto& qs : item_slots_) {
    for (size_t i = 1; i < qs.size(); ++i) {
      const int a = find(qs[0]);
      const int b = find(qs[i]);
      if (a != b) parent[static_cast<size_t>(b)] = a;
    }
  }
  std::vector<int32_t> min_id(slot_ids_.size(), INT32_MAX);
  for (size_t s = 0; s < slot_ids_.size(); ++s) {
    if (!alive_[s]) continue;
    const size_t root = static_cast<size_t>(find(static_cast<int>(s)));
    if (slot_ids_[s] < min_id[root]) min_id[root] = slot_ids_[s];
  }
  for (size_t s = 0; s < slot_ids_.size(); ++s) {
    comp_min_[s] = alive_[s]
                       ? min_id[static_cast<size_t>(find(static_cast<int>(s)))]
                       : INT32_MAX;
  }
}

size_t DynamicQueryIndex::num_active() const {
  size_t n = 0;
  for (uint8_t a : alive_) n += a;
  return n;
}

size_t DynamicQueryIndex::num_components() const {
  // Each component's min is the id of exactly one live member, so
  // counting self-labelled slots counts components.
  size_t n = 0;
  for (size_t s = 0; s < slot_ids_.size(); ++s) {
    if (alive_[s] && comp_min_[s] == slot_ids_[s]) ++n;
  }
  return n;
}

std::vector<int> DynamicQueryIndex::ShardAssignment(int num_shards,
                                                    bool by_component) const {
  POLYDAB_CHECK(num_shards >= 1);
  std::vector<int> shard(slot_ids_.size(), -1);
  for (size_t s = 0; s < slot_ids_.size(); ++s) {
    if (!alive_[s]) continue;
    const int32_t key = by_component ? comp_min_[s] : slot_ids_[s];
    shard[s] = static_cast<int>(
        Mix64(static_cast<uint64_t>(static_cast<int64_t>(key))) %
        static_cast<uint64_t>(num_shards));
  }
  return shard;
}

}  // namespace polydab::core
