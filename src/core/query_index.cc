#include "core/query_index.h"

#include "common/logging.h"

namespace polydab::core {

QueryIndex::QueryIndex(const std::vector<PolynomialQuery>& queries,
                       size_t num_items)
    : item_queries_(num_items) {
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (VarId v : queries[qi].p.Variables()) {
      POLYDAB_CHECK(static_cast<size_t>(v) < num_items);
      item_queries_[static_cast<size_t>(v)].push_back(static_cast<int>(qi));
    }
  }
}

double QueryIndex::MeanFanout() const {
  if (item_queries_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& qs : item_queries_) total += qs.size();
  return static_cast<double>(total) /
         static_cast<double>(item_queries_.size());
}

IncrementalEvaluator::IncrementalEvaluator(
    std::vector<PolynomialQuery> queries, Vector initial_values)
    : queries_(std::move(queries)),
      index_(queries_, initial_values.size()),
      values_(std::move(initial_values)) {
  query_values_.resize(queries_.size());
  Rebase();
}

void IncrementalEvaluator::Update(VarId item, double value) {
  POLYDAB_CHECK(static_cast<size_t>(item) < values_.size());
  const double old_value = values_[static_cast<size_t>(item)];
  if (old_value == value) return;
  // Patch each affected query by the change in the terms containing the
  // item: evaluate those terms at the new value minus at the old value
  // (all other items unchanged).
  for (int qi : index_.QueriesWithItem(item)) {
    double delta = 0.0;
    for (const Monomial& t : queries_[static_cast<size_t>(qi)].p.terms()) {
      const int e = t.ExponentOf(item);
      if (e == 0) continue;
      // term(new)/term(old) differ only in the item's power.
      double rest = t.coef();
      for (const auto& [var, exp] : t.powers()) {
        if (var == item) continue;
        double p = 1.0;
        for (int k = 0; k < exp; ++k) p *= values_[static_cast<size_t>(var)];
        rest *= p;
      }
      double old_pow = 1.0, new_pow = 1.0;
      for (int k = 0; k < e; ++k) {
        old_pow *= old_value;
        new_pow *= value;
      }
      delta += rest * (new_pow - old_pow);
    }
    query_values_[static_cast<size_t>(qi)] += delta;
  }
  values_[static_cast<size_t>(item)] = value;
  if (++updates_since_rebase_ >= kAutoRebaseUpdates) Rebase();
}

void IncrementalEvaluator::Rebase() {
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    query_values_[qi] = queries_[qi].p.Evaluate(values_);
  }
  updates_since_rebase_ = 0;
}

}  // namespace polydab::core
