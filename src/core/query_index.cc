#include "core/query_index.h"

#include "common/logging.h"

namespace polydab::core {

namespace {

/// splitmix64 finalizer. Query ids are typically small and dense;
/// hashing them apart keeps the lane assignment balanced and independent
/// of id numbering.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

QueryIndex::QueryIndex(const std::vector<PolynomialQuery>& queries,
                       size_t num_items)
    : item_queries_(num_items) {
  query_ids_.reserve(queries.size());
  for (const PolynomialQuery& q : queries) query_ids_.push_back(q.id);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (VarId v : queries[qi].p.Variables()) {
      POLYDAB_CHECK(static_cast<size_t>(v) < num_items);
      item_queries_[static_cast<size_t>(v)].push_back(static_cast<int>(qi));
    }
  }
}

std::vector<int> QueryIndex::ShardByQueryId(int num_shards) const {
  POLYDAB_CHECK(num_shards >= 1);
  std::vector<int> shard(query_ids_.size());
  for (size_t qi = 0; qi < query_ids_.size(); ++qi) {
    shard[qi] = static_cast<int>(Mix64(static_cast<uint64_t>(
                    static_cast<int64_t>(query_ids_[qi]))) %
                static_cast<uint64_t>(num_shards));
  }
  return shard;
}

std::vector<int> QueryIndex::ShardByComponent(int num_shards) const {
  POLYDAB_CHECK(num_shards >= 1);
  // Union-find over query indices; each item's fanout list is one clique.
  std::vector<int> parent(query_ids_.size());
  for (size_t qi = 0; qi < parent.size(); ++qi) parent[qi] = static_cast<int>(qi);
  auto find = [&parent](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const auto& qs : item_queries_) {
    for (size_t i = 1; i < qs.size(); ++i) {
      const int a = find(qs[0]);
      const int b = find(qs[i]);
      if (a != b) parent[static_cast<size_t>(b)] = a;
    }
  }
  // Hash each component by its smallest member's query id so the
  // assignment is stable under query reordering.
  std::vector<int32_t> min_id(query_ids_.size(), INT32_MAX);
  for (size_t qi = 0; qi < query_ids_.size(); ++qi) {
    const size_t root = static_cast<size_t>(find(static_cast<int>(qi)));
    if (query_ids_[qi] < min_id[root]) min_id[root] = query_ids_[qi];
  }
  std::vector<int> shard(query_ids_.size());
  for (size_t qi = 0; qi < query_ids_.size(); ++qi) {
    const size_t root = static_cast<size_t>(find(static_cast<int>(qi)));
    shard[qi] = static_cast<int>(Mix64(static_cast<uint64_t>(
                    static_cast<int64_t>(min_id[root]))) %
                static_cast<uint64_t>(num_shards));
  }
  return shard;
}

double QueryIndex::MeanFanout() const {
  if (item_queries_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& qs : item_queries_) total += qs.size();
  return static_cast<double>(total) /
         static_cast<double>(item_queries_.size());
}

IncrementalEvaluator::IncrementalEvaluator(
    std::vector<PolynomialQuery> queries, Vector initial_values)
    : queries_(std::move(queries)),
      index_(queries_, initial_values.size()),
      values_(std::move(initial_values)) {
  query_values_.resize(queries_.size());
  Rebase();
}

void IncrementalEvaluator::Update(VarId item, double value) {
  POLYDAB_CHECK(static_cast<size_t>(item) < values_.size());
  const double old_value = values_[static_cast<size_t>(item)];
  if (old_value == value) return;
  // Patch each affected query by the change in the terms containing the
  // item: evaluate those terms at the new value minus at the old value
  // (all other items unchanged).
  for (int qi : index_.QueriesWithItem(item)) {
    double delta = 0.0;
    for (const Monomial& t : queries_[static_cast<size_t>(qi)].p.terms()) {
      const int e = t.ExponentOf(item);
      if (e == 0) continue;
      // term(new)/term(old) differ only in the item's power.
      double rest = t.coef();
      for (const auto& [var, exp] : t.powers()) {
        if (var == item) continue;
        double p = 1.0;
        for (int k = 0; k < exp; ++k) p *= values_[static_cast<size_t>(var)];
        rest *= p;
      }
      double old_pow = 1.0, new_pow = 1.0;
      for (int k = 0; k < e; ++k) {
        old_pow *= old_value;
        new_pow *= value;
      }
      delta += rest * (new_pow - old_pow);
    }
    query_values_[static_cast<size_t>(qi)] += delta;
  }
  values_[static_cast<size_t>(item)] = value;
  if (++updates_since_rebase_ >= kAutoRebaseUpdates) Rebase();
}

void IncrementalEvaluator::Rebase() {
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    query_values_[qi] = queries_[qi].p.Evaluate(values_);
  }
  updates_since_rebase_ = 0;
}

}  // namespace polydab::core
