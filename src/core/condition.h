#ifndef POLYDAB_CORE_CONDITION_H_
#define POLYDAB_CORE_CONDITION_H_

#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "gp/posynomial.h"

/// \file condition.h
/// Builders for the necessary-and-sufficient DAB correctness conditions of
/// §III-A, generalized from the paper's worked product examples to any
/// positive-coefficient polynomial with non-negative integer exponents over
/// positive data.
///
/// Single-DAB condition (generalizes Eq. (1)):
///     P(V + b) − P(V) ≤ B
/// Dual-DAB condition (generalizes Eq. (2); Eq. (3) is implied):
///     P(V + c + b) − P(V + c) ≤ B
///
/// Because P has positive coefficients and is monotone over positive data,
/// the worst simultaneous drift is every item at the top of its range, so
/// these single inequalities are exact. Multinomial expansion of the left
/// side keeps only terms containing at least one b factor (the b-free terms
/// cancel), and every surviving term has a positive coefficient — i.e. the
/// condition is a posynomial inequality, which is what lets the paper use
/// geometric programming.

namespace polydab::core {

/// \brief Mapping between data items of one GP and contiguous GP variable
/// indices. Layout: b_0..b_{k-1}, then (if dual) c_0..c_{k-1}, extra
/// variables (e.g. R) after that.
struct GpVarMap {
  std::vector<VarId> vars;  ///< query vars, sorted
  bool has_secondary = false;

  int NumVars() const {
    return static_cast<int>(vars.size()) * (has_secondary ? 2 : 1);
  }
  int BIndex(size_t i) const { return static_cast<int>(i); }
  int CIndex(size_t i) const {
    return static_cast<int>(vars.size() + i);
  }
};

/// \brief Expand P(V+b) − P(V) as a posynomial in the b variables, divided
/// by \p qab so the GP constraint reads "≤ 1".
///
/// Requires: positive-coefficient P, integer exponents ≥ 0, V > 0 for every
/// query variable, qab > 0.
Result<gp::Posynomial> SingleDabCondition(const Polynomial& p,
                                          const Vector& values, double qab,
                                          const GpVarMap& map);

/// \brief Expand P(V+c+b) − P(V+c) as a posynomial in (b, c), divided by
/// \p qab. Same requirements as SingleDabCondition; \p map must have
/// has_secondary = true.
Result<gp::Posynomial> DualDabCondition(const Polynomial& p,
                                        const Vector& values, double qab,
                                        const GpVarMap& map);

/// Validate that \p p is usable by the condition builders (positive
/// coefficients, values positive on its variables, positive qab).
Status CheckConditionInputs(const Polynomial& p, const Vector& values,
                            double qab);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_CONDITION_H_
