#ifndef POLYDAB_CORE_OPTIMAL_REFRESH_H_
#define POLYDAB_CORE_OPTIMAL_REFRESH_H_

#include "common/status.h"
#include "core/condition.h"
#include "core/ddm.h"
#include "core/query.h"
#include "gp/gp_solver.h"

/// \file optimal_refresh.h
/// §III-A.1: the single-DAB assignment that is optimal in the number of
/// refreshes for a positive-coefficient polynomial query —
///   minimize   Σ rate(λ_i, b_i)
///   subject to P(V+b) − P(V) ≤ B.
/// Because the condition depends on current values, this assignment must be
/// recomputed on every refresh (the motivation for the Dual-DAB approach).

namespace polydab::core {

/// \brief Compute the refresh-optimal single-DAB assignment for PPQ
/// \p query at the current \p values.
///
/// \param values dense per-item values, indexed by VarId.
/// \param rates  dense per-item estimated rates of change λ.
/// \param warm   optional previous assignment for the same query, used to
///               warm-start the GP solver.
///
/// The returned QueryDabs has secondary == primary (single-DAB semantics)
/// and recompute_rate equal to the modeled refresh arrival rate, since each
/// refresh invalidates the assignment.
Result<QueryDabs> SolveOptimalRefresh(
    const PolynomialQuery& query, const Vector& values, const Vector& rates,
    DataDynamicsModel ddm = DataDynamicsModel::kMonotonic,
    const gp::SolverOptions& options = gp::SolverOptions(),
    const QueryDabs* warm = nullptr);

/// The assembled GP of one refresh-optimal solve, split out so a batch of
/// programs can be handed to `gp::SolveEngine::SolveBatch` in one call
/// (core::ReplanParts, docs/SOLVER.md). By construction
///   BuildOptimalRefreshProgram + SolveGp + ExtractOptimalRefresh
/// equals SolveOptimalRefresh bit for bit.
struct OptimalRefreshProgram {
  gp::GpProblem gp;
  GpVarMap map;
  Vector warm_x;          ///< previous primary DABs
  bool has_warm = false;  ///< warm point accepted (vars match)
  DataDynamicsModel ddm = DataDynamicsModel::kMonotonic;
};

Result<OptimalRefreshProgram> BuildOptimalRefreshProgram(
    const PolynomialQuery& query, const Vector& values, const Vector& rates,
    DataDynamicsModel ddm, const QueryDabs* warm);

QueryDabs ExtractOptimalRefresh(const OptimalRefreshProgram& prog,
                                const Vector& rates,
                                const gp::GpSolution& sol);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_OPTIMAL_REFRESH_H_
