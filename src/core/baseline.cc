#include "core/baseline.h"

#include <cmath>

#include "core/condition.h"

namespace polydab::core {

namespace {

/// Largest step d such that P(V + d·e_j) − P(V) ≤ budget, by doubling +
/// bisection (P is monotone increasing in each item over positive data).
double SolveSingleItemBound(const Polynomial& p, const Vector& values,
                            VarId item, double budget) {
  const double base = p.Evaluate(values);
  auto drift = [&](double d) {
    Vector shifted = values;
    shifted[static_cast<size_t>(item)] += d;
    return p.Evaluate(shifted) - base;
  };
  double hi = 1e-6;
  while (drift(hi) < budget && hi < 1e12) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (drift(mid) <= budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<QueryDabs> SolveWsDab(const PolynomialQuery& query,
                             const Vector& values) {
  POLYDAB_RETURN_NOT_OK(CheckConditionInputs(query.p, values, query.qab));
  QueryDabs out;
  out.vars = query.p.Variables();
  const size_t k = out.vars.size();
  if (k == 0) {
    return Status::InvalidArgument("query has no variables");
  }

  // Step 1: per-item sufficient conditions with an equal QAB split.
  out.primary.resize(k);
  for (size_t i = 0; i < k; ++i) {
    out.primary[i] = SolveSingleItemBound(query.p, values, out.vars[i],
                                          query.qab / static_cast<double>(k));
    if (out.primary[i] <= 0.0) {
      return Status::Internal("per-item bound collapsed to zero");
    }
  }

  // Step 2: cross terms are not covered by the per-item split; scale the
  // whole vector down until the joint worst case respects the QAB.
  auto joint_drift = [&](double s) {
    Vector shifted = values;
    for (size_t i = 0; i < k; ++i) {
      shifted[static_cast<size_t>(out.vars[i])] += s * out.primary[i];
    }
    return query.p.Evaluate(shifted) - query.p.Evaluate(values);
  };
  double scale = 1.0;
  if (joint_drift(1.0) > query.qab) {
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 100; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (joint_drift(mid) <= query.qab) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    scale = lo;
  }
  for (double& b : out.primary) b *= scale;

  out.secondary = out.primary;  // mirrors primary; see single_dab
  out.single_dab = true;
  out.recompute_rate = 0.0;     // baseline models no rate information
  return out;
}

}  // namespace polydab::core
