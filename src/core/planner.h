#ifndef POLYDAB_CORE_PLANNER_H_
#define POLYDAB_CORE_PLANNER_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>

#include "common/status.h"
#include "core/baseline.h"
#include "core/dual_dab.h"
#include "core/heuristics.h"
#include "core/laq.h"
#include "core/optimal_refresh.h"
#include "core/query.h"

/// \file planner.h
/// Unified per-query DAB planning front-end: dispatches on the chosen
/// algorithm and, for general (mixed-sign) queries, on the chosen
/// heuristic. This is the single entry point the simulator's coordinator
/// calls on every (re)computation, so all of the paper's schemes can be
/// compared under identical protocol mechanics.

namespace polydab::obs {
class TraceSink;
}  // namespace polydab::obs

namespace polydab::core {

/// Which assignment algorithm drives the coordinator.
enum class AssignmentMethod {
  kOptimalRefresh,  ///< §III-A.1 single-DAB refresh-optimal
  kDualDab,         ///< §III-A.2 dual-DAB (primary + secondary)
  kWsDab,           ///< [5]-style per-item sufficient-condition baseline
};

/// Short lower-case names for log lines and run reports ("dual", "hh"...).
const char* Name(AssignmentMethod method);
const char* Name(GeneralPqHeuristic heuristic);
const char* Name(DataDynamicsModel ddm);

/// Full planner configuration.
struct PlannerConfig {
  AssignmentMethod method = AssignmentMethod::kDualDab;
  /// Heuristic for general PQs (queries with negative coefficients).
  GeneralPqHeuristic heuristic = GeneralPqHeuristic::kDifferentSum;
  /// Dual-DAB parameters (mu, ddm, solver tunables). The ddm also applies
  /// to Optimal Refresh.
  DualDabParams dual;
  /// Optional telemetry sink recording the `core.planner.*` instruments
  /// (plan/replan latency, warm-start hit rate) and, propagated into the
  /// GP solver, the `gp.solver.*` instruments. Null = off. Not owned.
  obs::MetricRegistry* registry = nullptr;
  /// Optional causal event trace (obs/trace.h): emits planner_plan /
  /// planner_replan events stamped with the sink's logical clock. The
  /// driving simulator sets both fields; `trace_node` tags the events
  /// with the coordinator the planner is working for. Null = off.
  /// Not owned.
  obs::TraceSink* trace = nullptr;
  int32_t trace_node = -1;
  /// Worker-side emission overrides for the real-thread lane runtime
  /// (src/rt/, docs/CONCURRENCY.md). A planner running on a pool worker
  /// must not read the sink's logical clock — the event loop advances it
  /// concurrently — so the dispatcher pins the event timestamp here; NaN
  /// (the default) means "stamp trace->now()". `trace_thread` tags the
  /// planner events with the emitting worker (-1: the event-loop thread);
  /// the canonical re-sort pass (obs/trace_canon.h) strips the tags.
  /// Neither field is configuration, so Describe() ignores both.
  double trace_time = std::numeric_limits<double>::quiet_NaN();
  int32_t trace_thread = -1;

  /// One-line rendering of every knob, for run reports and test failures,
  /// e.g. "method=dual heuristic=ds ddm=mono mu=5".
  std::string Describe() const;
};

std::ostream& operator<<(std::ostream& os, const PlannerConfig& config);

/// \brief Plan DABs for one query at the current values.
///
/// LAQs (degree ≤ 1) take the closed form regardless of method. General
/// queries are routed through `config.heuristic`; for single-DAB methods
/// the heuristic runs with the equivalent single-DAB sub-solver.
Result<QueryDabs> PlanQuery(const PolynomialQuery& query,
                            const Vector& values, const Vector& rates,
                            const PlannerConfig& config,
                            const QueryDabs* warm = nullptr);

/// One independently maintained piece of a query's plan. Under Half and
/// Half a general query has two parts (P1 : B/2 and P2 : B/2), each with
/// its own validity anchors and its own recomputations — the coordinator
/// tracks and repairs them separately (§III-B.2). Every other scheme
/// produces a single part (for DS the part's subquery is P1+P2 : B).
struct PlanPart {
  PolynomialQuery subquery;  ///< the PPQ/LAQ actually solved for this part
  QueryDabs dabs;
};

/// A query's full plan: one or two parts.
struct QueryPlan {
  std::vector<PlanPart> parts;
};

/// \brief Plan a query as independently maintained parts. This is the
/// form the simulator consumes; PlanQuery is the merged convenience view.
Result<QueryPlan> PlanQueryParts(const PolynomialQuery& query,
                                 const Vector& values, const Vector& rates,
                                 const PlannerConfig& config);

/// \brief Re-solve one part after its validity range was violated,
/// warm-starting from the part's previous assignment. The part's subquery
/// is fixed at PlanQueryParts time (the sign split does not depend on
/// data values).
Result<QueryDabs> ReplanPart(const PlanPart& part, const Vector& values,
                             const Vector& rates,
                             const PlannerConfig& config);

/// \brief Re-solve many stale parts through one batched engine call
/// (gp/solve_engine.h, docs/SOLVER.md). Results come back in input order
/// and each is bit-identical to what `ReplanPart` on that part alone
/// would return: the GP programs are assembled by the same Build step the
/// per-part solvers use, the engine only groups/memoizes bitwise-equal
/// work, and closed-form parts (LAQs, WS-DAB) solve inline. The
/// `core.planner.*` and `gp.solver.*` instrument totals on
/// `config.registry` also match N individual calls (replan_seconds gets
/// one sample per part, each an equal share of the batch wall time).
///
/// Unlike `ReplanPart`, this does NOT emit planner_replan trace events:
/// the caller interleaves each part's replan between its own
/// recompute_start/end, so it re-emits the events at those exact slots
/// (src/sim/simulation.cc's batched service pass).
std::vector<Result<QueryDabs>> ReplanParts(
    const std::vector<const PlanPart*>& parts, const Vector& values,
    const Vector& rates, const PlannerConfig& config,
    gp::SolveEngine* engine);

/// Staleness-aware bound widening (the robustness protocol's graceful
/// degradation, docs/ROBUSTNESS.md): when an item's source lease expires,
/// the coordinator can keep serving the query under a widened bound only
/// when the query's dependence on the dead item is linear — degree <= 1
/// in that item, so dQ/d(item) does not itself depend on the unknown
/// stale value and the worst-case error grows exactly as
/// sensitivity * drift. Higher-degree dependence is unboundable without
/// the live value and the query must be marked degraded instead.
struct StalenessWidening {
  bool boundable = false;    ///< query has degree <= 1 in the item
  double sensitivity = 0.0;  ///< |dQ/d(item)| at the view; 0 if unboundable
};

/// Widening of \p query per unit of worst-case drift of \p item,
/// evaluated at the coordinator's current \p view.
StalenessWidening WideningFor(const PolynomialQuery& query, VarId item,
                              const Vector& view);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_PLANNER_H_
