#include "core/condition.h"

#include <cmath>

#include "common/logging.h"

namespace polydab::core {

namespace {

/// A partially expanded symbolic term: numeric coefficient (absorbing data
/// values and multinomial factors) times a power product of GP variables.
struct SymTerm {
  double coef;
  std::vector<std::pair<int, double>> exps;  // (gp var, exponent)
  int b_degree;                              // total degree in b variables
};

double Multinomial(int n, int k1, int k2) {
  // n! / (k1! k2! (n-k1-k2)!) for small n (query degrees are small).
  auto fact = [](int m) {
    double f = 1.0;
    for (int i = 2; i <= m; ++i) f *= i;
    return f;
  };
  return fact(n) / (fact(k1) * fact(k2) * fact(n - k1 - k2));
}

/// Expansion of one factor (V + b)^e or (V + c + b)^e into SymTerms.
std::vector<SymTerm> ExpandFactor(double value, int exp, int b_index,
                                  int c_index /* -1 for single-DAB */) {
  std::vector<SymTerm> out;
  for (int kb = 0; kb <= exp; ++kb) {
    const int kc_max = (c_index >= 0) ? exp - kb : 0;
    for (int kc = 0; kc <= kc_max; ++kc) {
      const int kv = exp - kb - kc;
      SymTerm t;
      t.coef = Multinomial(exp, kb, kc) * std::pow(value, kv);
      if (kb > 0) t.exps.emplace_back(b_index, static_cast<double>(kb));
      if (kc > 0) t.exps.emplace_back(c_index, static_cast<double>(kc));
      t.b_degree = kb;
      out.push_back(std::move(t));
    }
  }
  return out;
}

std::vector<SymTerm> Convolve(const std::vector<SymTerm>& a,
                              const std::vector<SymTerm>& b) {
  std::vector<SymTerm> out;
  out.reserve(a.size() * b.size());
  for (const SymTerm& x : a) {
    for (const SymTerm& y : b) {
      SymTerm t;
      t.coef = x.coef * y.coef;
      t.exps = x.exps;
      t.exps.insert(t.exps.end(), y.exps.begin(), y.exps.end());
      t.b_degree = x.b_degree + y.b_degree;
      out.push_back(std::move(t));
    }
  }
  return out;
}

Result<gp::Posynomial> BuildCondition(const Polynomial& p,
                                      const Vector& values, double qab,
                                      const GpVarMap& map, bool dual) {
  POLYDAB_RETURN_NOT_OK(CheckConditionInputs(p, values, qab));
  if (dual) POLYDAB_CHECK(map.has_secondary);

  auto index_of = [&map](VarId v) -> int {
    for (size_t i = 0; i < map.vars.size(); ++i) {
      if (map.vars[i] == v) return static_cast<int>(i);
    }
    return -1;
  };

  gp::Posynomial cond;
  for (const Monomial& mono : p.terms()) {
    std::vector<SymTerm> acc = {{1.0, {}, 0}};
    for (const auto& [var, exp] : mono.powers()) {
      const int i = index_of(var);
      if (i < 0) {
        return Status::InvalidArgument(
            "query variable missing from GP variable map");
      }
      const double v = values[static_cast<size_t>(var)];
      acc = Convolve(acc, ExpandFactor(v, exp, map.BIndex(i),
                                       dual ? map.CIndex(i) : -1));
    }
    // Keep only the terms with at least one b factor: the b-free terms are
    // exactly P(V+c) (resp. P(V)) and cancel in the difference.
    for (SymTerm& t : acc) {
      if (t.b_degree == 0) continue;
      cond.AddTerm(mono.coef() * t.coef / qab, std::move(t.exps));
    }
  }
  if (cond.empty()) {
    return Status::InvalidArgument(
        "query polynomial has no variable terms; nothing to bound");
  }
  return cond;
}

}  // namespace

Status CheckConditionInputs(const Polynomial& p, const Vector& values,
                            double qab) {
  if (qab <= 0.0) {
    return Status::InvalidArgument("QAB must be positive");
  }
  if (!p.IsPositiveCoefficient()) {
    return Status::InvalidArgument(
        "condition builders require a positive-coefficient polynomial; "
        "split general queries first (SplitSigns / heuristics)");
  }
  for (VarId v : p.Variables()) {
    if (static_cast<size_t>(v) >= values.size()) {
      return Status::InvalidArgument("values vector too short for query");
    }
    if (!(values[static_cast<size_t>(v)] > 0.0)) {
      return Status::InvalidArgument(
          "data values must be positive for the monotone worst-case "
          "condition to be exact");
    }
  }
  return Status::OK();
}

Result<gp::Posynomial> SingleDabCondition(const Polynomial& p,
                                          const Vector& values, double qab,
                                          const GpVarMap& map) {
  return BuildCondition(p, values, qab, map, /*dual=*/false);
}

Result<gp::Posynomial> DualDabCondition(const Polynomial& p,
                                        const Vector& values, double qab,
                                        const GpVarMap& map) {
  return BuildCondition(p, values, qab, map, /*dual=*/true);
}

}  // namespace polydab::core
