#include "core/dual_dab.h"

namespace polydab::core {

Result<DualDabProgram> BuildDualDabProgram(const PolynomialQuery& query,
                                           const Vector& values,
                                           const Vector& rates,
                                           const DualDabParams& params,
                                           const QueryDabs* warm) {
  if (params.mu <= 0.0) {
    return Status::InvalidArgument("mu must be positive");
  }
  DualDabProgram prog;
  GpVarMap& map = prog.map;
  map.vars = query.p.Variables();
  map.has_secondary = true;
  const size_t k = map.vars.size();
  if (k == 0) {
    return Status::InvalidArgument("query has no variables");
  }
  const int r_index = static_cast<int>(2 * k);  // R after b's and c's

  gp::GpProblem& gp_problem = prog.gp;
  gp_problem.num_vars = static_cast<int>(2 * k + 1);

  // Objective: refresh stream + mu * recompute stream.
  for (size_t i = 0; i < k; ++i) {
    AddRateTerm(params.ddm, rates[static_cast<size_t>(map.vars[i])],
                map.BIndex(i), &gp_problem.objective);
  }
  gp_problem.objective.AddTerm(params.mu, {{r_index, 1.0}});
  // Vanishing cost on secondary widths. A data item that only appears
  // linearly cancels out of the validity condition, leaving its c with no
  // upper pressure at all — the GP would be unbounded along that ray.
  // epsilon * c_i / V_i pins such ranges at a finite value and perturbs
  // every other solution by a negligible (1e-6 relative) amount.
  for (size_t i = 0; i < k; ++i) {
    gp_problem.objective.AddTerm(
        1e-6 / values[static_cast<size_t>(map.vars[i])],
        {{map.CIndex(i), 1.0}});
  }

  // Validity condition over the secondary range.
  POLYDAB_ASSIGN_OR_RETURN(
      gp::Posynomial cond,
      DualDabCondition(query.p, values, query.qab, map));
  gp_problem.constraints.push_back(std::move(cond));

  // b_i / c_i <= 1 and rate(lambda_i, c_i) <= R.
  for (size_t i = 0; i < k; ++i) {
    gp::Posynomial bc;
    bc.AddTerm(1.0, {{map.BIndex(i), 1.0}, {map.CIndex(i), -1.0}});
    gp_problem.constraints.push_back(std::move(bc));

    gp::Posynomial rec;
    AddRecomputeBound(params.ddm, rates[static_cast<size_t>(map.vars[i])],
                      map.CIndex(i), r_index, &rec);
    gp_problem.constraints.push_back(std::move(rec));
  }

  if (warm != nullptr && warm->vars == map.vars &&
      warm->recompute_rate > 0.0) {
    prog.warm_x.reserve(2 * k + 1);
    prog.warm_x.insert(prog.warm_x.end(), warm->primary.begin(),
                       warm->primary.end());
    prog.warm_x.insert(prog.warm_x.end(), warm->secondary.begin(),
                       warm->secondary.end());
    prog.warm_x.push_back(warm->recompute_rate);
    prog.has_warm = true;
  }
  return prog;
}

QueryDabs ExtractDualDab(const DualDabProgram& prog,
                         const gp::GpSolution& sol) {
  const size_t k = prog.map.vars.size();
  const int r_index = static_cast<int>(2 * k);
  QueryDabs out;
  out.vars = prog.map.vars;
  out.primary.assign(sol.x.begin(), sol.x.begin() + static_cast<long>(k));
  out.secondary.assign(sol.x.begin() + static_cast<long>(k),
                       sol.x.begin() + static_cast<long>(2 * k));
  out.recompute_rate = sol.x[static_cast<size_t>(r_index)];
  // Numerical safety: the GP solves b <= c to tolerance; enforce exactly so
  // downstream validity checks (c >= b) never fail by round-off.
  for (size_t i = 0; i < k; ++i) {
    if (out.secondary[i] < out.primary[i]) {
      out.secondary[i] = out.primary[i];
    }
  }
  return out;
}

Result<QueryDabs> SolveDualDab(const PolynomialQuery& query,
                               const Vector& values, const Vector& rates,
                               const DualDabParams& params,
                               const QueryDabs* warm) {
  POLYDAB_ASSIGN_OR_RETURN(
      DualDabProgram prog,
      BuildDualDabProgram(query, values, rates, params, warm));
  POLYDAB_ASSIGN_OR_RETURN(
      gp::GpSolution sol,
      SolveGp(prog.gp, params.solver,
              prog.has_warm ? &prog.warm_x : nullptr));
  return ExtractDualDab(prog, sol);
}

}  // namespace polydab::core
