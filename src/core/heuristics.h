#ifndef POLYDAB_CORE_HEURISTICS_H_
#define POLYDAB_CORE_HEURISTICS_H_

#include <functional>

#include "common/status.h"
#include "core/dual_dab.h"
#include "core/query.h"

/// \file heuristics.h
/// §III-B: DAB assignment for *general* polynomial queries (mixed-sign
/// coefficients), where no efficient optimal technique is known. Both
/// heuristics rest on the key observation that P = P1 − P2 with P1, P2
/// positive-coefficient (poly/Polynomial::SplitSigns):
///
/// * Half and Half (HH): solve P1 : B/2 and P2 : B/2 independently; a data
///   item appearing in both takes the smaller bound. Correct because the
///   query can only drift past B if one sub-polynomial drifted past B/2.
///
/// * Different Sum (DS): solve the single PPQ  P1 + P2 : B  and use its
///   bounds. Correct because the dual-DAB condition for P1+P2 dominates
///   the one for P1−P2 term-by-term (Claim 1), and provably near-optimal
///   for independent sub-polynomials with small DABs (Claim 2, factor
///   1/(1−α)^d under the monotonic ddm).

namespace polydab::core {

enum class GeneralPqHeuristic {
  kHalfAndHalf,
  kDifferentSum,
};

/// Sub-solver for positive-coefficient queries, e.g. a bound SolveDualDab
/// or SolveOptimalRefresh. The warm pointer may be null.
using PpqSolver = std::function<Result<QueryDabs>(const PolynomialQuery&,
                                                  const QueryDabs* warm)>;

/// \brief Assign DABs to general query \p query using \p heuristic with an
/// arbitrary PPQ sub-solver (dual- or single-DAB).
///
/// Works for PPQs too (the negative part is empty and the query is solved
/// directly). The returned QueryDabs covers the union of variables; under
/// HH the modeled recompute rate is the sum of the two sub-assignments'
/// rates, since a violation of either validity range forces recomputation.
Result<QueryDabs> SolveGeneralPq(const PolynomialQuery& query,
                                 GeneralPqHeuristic heuristic,
                                 const PpqSolver& solve_ppq,
                                 const QueryDabs* warm = nullptr);

/// Convenience overload using the Dual-DAB sub-solver (§III-B as evaluated
/// in the paper's Figure 8).
Result<QueryDabs> SolveGeneralPq(const PolynomialQuery& query,
                                 const Vector& values, const Vector& rates,
                                 GeneralPqHeuristic heuristic,
                                 const DualDabParams& params = DualDabParams(),
                                 const QueryDabs* warm = nullptr);

}  // namespace polydab::core

#endif  // POLYDAB_CORE_HEURISTICS_H_
