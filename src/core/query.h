#ifndef POLYDAB_CORE_QUERY_H_
#define POLYDAB_CORE_QUERY_H_

#include <string>
#include <vector>

#include "poly/polynomial.h"

/// \file query.h
/// Continuous polynomial queries "P : B" (§I-A): a user wants the value of
/// the polynomial P tracked with tolerable imprecision (QAB) B.

namespace polydab {

/// \brief A continuous query: polynomial + query accuracy bound.
struct PolynomialQuery {
  int id = 0;            ///< caller-assigned identity (stable across runs)
  Polynomial p;          ///< the tracked polynomial
  double qab = 0.0;      ///< query accuracy bound B > 0

  /// True when the query is a PPQ (all coefficients positive, §III-A).
  bool IsPositiveCoefficient() const { return p.IsPositiveCoefficient(); }

  /// True when the query is a linear aggregate query (degree 1).
  bool IsLinearAggregate() const { return p.Degree() <= 1; }

  std::string ToString(const VariableRegistry& reg) const {
    return p.ToString(reg) + " : " + std::to_string(qab);
  }
};

/// \brief Per-query DAB assignment: the output of every algorithm in this
/// module (§III). Bounds are aligned with `vars` (the query's data items).
///
/// The primary DAB `b` is shipped to sources and guarantees the QAB; the
/// secondary DAB `c >= b` stays at the coordinator and bounds the range of
/// item values for which the primary assignment remains valid (§III-A.2).
/// Single-DAB algorithms (Optimal Refresh, the WSDAB baseline) report
/// secondary == primary: any refresh escapes the validity range, so every
/// refresh triggers a recomputation, exactly the behaviour §I-B describes.
struct QueryDabs {
  std::vector<VarId> vars;   ///< sorted data items of the query
  Vector primary;            ///< b, aligned with vars
  Vector secondary;          ///< c, aligned with vars, c >= b
  double recompute_rate = 0.0;  ///< modeled R = max_i rate(lambda_i, c_i)
  /// True for single-DAB schemes: the primaries are only guaranteed at
  /// the exact anchor values (validity range of width zero), even though
  /// secondary mirrors primary for uniform bookkeeping.
  bool single_dab = false;
  /// True when the assignment's correctness condition does not depend on
  /// data values at all (LAQs: sum |w_i| b_i <= B), so it never goes
  /// stale and never needs recomputation — whatever the scheme.
  bool never_stale = false;

  /// Index of \p v in vars, or -1.
  int IndexOf(VarId v) const {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == v) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace polydab

#endif  // POLYDAB_CORE_QUERY_H_
