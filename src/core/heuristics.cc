#include "core/heuristics.h"

#include <algorithm>

namespace polydab::core {

namespace {

/// Merge two sub-assignments over possibly overlapping variable sets,
/// taking the tighter bound wherever both assign one (HH's rule for shared
/// items). Safe because both validity conditions are monotone in (b, c).
QueryDabs MergeMin(const QueryDabs& a, const QueryDabs& b) {
  QueryDabs out;
  std::set_union(a.vars.begin(), a.vars.end(), b.vars.begin(), b.vars.end(),
                 std::back_inserter(out.vars));
  out.primary.resize(out.vars.size());
  out.secondary.resize(out.vars.size());
  for (size_t i = 0; i < out.vars.size(); ++i) {
    const int ia = a.IndexOf(out.vars[i]);
    const int ib = b.IndexOf(out.vars[i]);
    if (ia >= 0 && ib >= 0) {
      out.primary[i] = std::min(a.primary[static_cast<size_t>(ia)],
                                b.primary[static_cast<size_t>(ib)]);
      out.secondary[i] = std::min(a.secondary[static_cast<size_t>(ia)],
                                  b.secondary[static_cast<size_t>(ib)]);
    } else if (ia >= 0) {
      out.primary[i] = a.primary[static_cast<size_t>(ia)];
      out.secondary[i] = a.secondary[static_cast<size_t>(ia)];
    } else {
      out.primary[i] = b.primary[static_cast<size_t>(ib)];
      out.secondary[i] = b.secondary[static_cast<size_t>(ib)];
    }
  }
  // Either validity range escaping forces a recomputation, so the modeled
  // event rates add.
  out.recompute_rate = a.recompute_rate + b.recompute_rate;
  return out;
}

}  // namespace

Result<QueryDabs> SolveGeneralPq(const PolynomialQuery& query,
                                 GeneralPqHeuristic heuristic,
                                 const PpqSolver& solve_ppq,
                                 const QueryDabs* warm) {
  Polynomial p1, p2;
  query.p.SplitSigns(&p1, &p2);
  if (p1.IsZero() && p2.IsZero()) {
    return Status::InvalidArgument("query polynomial is zero");
  }
  if (p2.IsZero() || p2.Degree() == 0) {
    // Pure PPQ (a constant negative term shifts the value but not the
    // drift): solve directly.
    PolynomialQuery q = query;
    q.p = p1;
    return solve_ppq(q, warm);
  }
  if (p1.IsZero() || p1.Degree() == 0) {
    // Entirely negative: -P2 drifts exactly as P2 does.
    PolynomialQuery q = query;
    q.p = p2;
    return solve_ppq(q, warm);
  }

  switch (heuristic) {
    case GeneralPqHeuristic::kHalfAndHalf: {
      PolynomialQuery q1{query.id, p1, query.qab / 2.0};
      PolynomialQuery q2{query.id, p2, query.qab / 2.0};
      POLYDAB_ASSIGN_OR_RETURN(QueryDabs d1, solve_ppq(q1, nullptr));
      POLYDAB_ASSIGN_OR_RETURN(QueryDabs d2, solve_ppq(q2, nullptr));
      return MergeMin(d1, d2);
    }
    case GeneralPqHeuristic::kDifferentSum: {
      // P1 + P2 has exactly the union variable set, so a warm start from a
      // previous DS solution stays index-compatible.
      PolynomialQuery sum{query.id, p1 + p2, query.qab};
      return solve_ppq(sum, warm);
    }
  }
  return Status::Internal("unknown heuristic");
}

Result<QueryDabs> SolveGeneralPq(const PolynomialQuery& query,
                                 const Vector& values, const Vector& rates,
                                 GeneralPqHeuristic heuristic,
                                 const DualDabParams& params,
                                 const QueryDabs* warm) {
  PpqSolver dual = [&values, &rates, &params](const PolynomialQuery& q,
                                              const QueryDabs* w) {
    return SolveDualDab(q, values, rates, params, w);
  };
  return SolveGeneralPq(query, heuristic, dual, warm);
}

}  // namespace polydab::core
