#include "core/validator.h"

#include <cmath>
#include <string>

namespace polydab::core {

double PpqWorstDrift(const Polynomial& p, const Vector& values,
                     const QueryDabs& d) {
  // Single-DAB assignments guarantee the QAB only at the exact anchor
  // values (zero-width validity range, hence the recompute-per-refresh
  // behaviour of §I-B); dual assignments across the whole +-c range.
  Vector top = values, mid = values;
  for (size_t i = 0; i < d.vars.size(); ++i) {
    const size_t v = static_cast<size_t>(d.vars[i]);
    const double range = d.single_dab ? 0.0 : d.secondary[i];
    mid[v] += range;
    top[v] += range + d.primary[i];
  }
  return p.Evaluate(top) - p.Evaluate(mid);
}

double GeneralWorstDriftBound(const Polynomial& p, const Vector& values,
                              const QueryDabs& d) {
  Polynomial p1, p2;
  p.SplitSigns(&p1, &p2);
  double bound = 0.0;
  if (!p1.IsZero()) bound += PpqWorstDrift(p1, values, d);
  if (!p2.IsZero()) bound += PpqWorstDrift(p2, values, d);
  return bound;
}

Status ValidatePart(const PlanPart& part, const Vector& values,
                    double tol) {
  const double qab = part.subquery.qab;
  if (qab <= 0.0) {
    return Status::InvalidArgument("part has non-positive QAB");
  }
  for (size_t i = 0; i < part.dabs.vars.size(); ++i) {
    if (!(part.dabs.primary[i] > 0.0)) {
      return Status::Internal("part has non-positive primary DAB");
    }
    if (part.dabs.secondary[i] < part.dabs.primary[i]) {
      return Status::Internal("part has secondary < primary");
    }
  }
  // LAQ parts have a value-independent linear condition.
  if (part.subquery.IsLinearAggregate()) {
    double lhs = 0.0;
    for (const Monomial& t : part.subquery.p.terms()) {
      if (t.powers().empty()) continue;
      const int idx = part.dabs.IndexOf(t.powers()[0].first);
      if (idx < 0) {
        return Status::Internal("LAQ part missing a variable bound");
      }
      lhs += std::fabs(t.coef()) *
             part.dabs.primary[static_cast<size_t>(idx)];
    }
    if (lhs > qab * (1.0 + tol)) {
      return Status::Internal("LAQ part drift " + std::to_string(lhs) +
                              " exceeds QAB " + std::to_string(qab));
    }
    return Status::OK();
  }
  const double drift =
      GeneralWorstDriftBound(part.subquery.p, values, part.dabs);
  if (drift > qab * (1.0 + tol)) {
    return Status::Internal("part worst drift " + std::to_string(drift) +
                            " exceeds QAB " + std::to_string(qab));
  }
  return Status::OK();
}

Status ValidatePlan(const QueryPlan& plan, const Vector& values,
                    double tol) {
  if (plan.parts.empty()) {
    return Status::InvalidArgument("plan has no parts");
  }
  for (size_t pi = 0; pi < plan.parts.size(); ++pi) {
    Status st = ValidatePart(plan.parts[pi], values, tol);
    if (!st.ok()) {
      return Status::Internal("part " + std::to_string(pi) + ": " +
                              st.message());
    }
  }
  return Status::OK();
}

}  // namespace polydab::core
