#include "svc/query_service.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "recovery/codec.h"

namespace polydab::svc {

const char* Name(AdmissionConfig::Policy policy) {
  switch (policy) {
    case AdmissionConfig::Policy::kReject: return "reject";
    case AdmissionConfig::Policy::kDegrade: return "degrade";
  }
  return "?";
}

double PlanRecomputeEstimate(const core::QueryPlan& plan) {
  double estimate = 0.0;
  for (const core::PlanPart& part : plan.parts) {
    estimate += part.dabs.recompute_rate;
  }
  return estimate;
}

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QueryService::QueryService(const AdmissionConfig& admission,
                           std::vector<workload::ChurnOp> schedule,
                           obs::MetricRegistry* registry,
                           sim::PlanMaintenance maintenance)
    : admission_(admission),
      schedule_(std::move(schedule)),
      registry_(registry),
      maintenance_(maintenance) {}

Status QueryService::OnTick(int /*tick*/, double now, sim::ServiceOps& ops) {
  while (next_op_ < schedule_.size() && schedule_[next_op_].time <= now) {
    POLYDAB_RETURN_NOT_OK(Apply(schedule_[next_op_], ops));
    ++next_op_;
  }
  return Status::OK();
}

void QueryService::EnsureInstruments() {
  if (registry_ == nullptr || m_registrations_ != nullptr) return;
  m_registrations_ = registry_->GetCounter("svc.service.registrations");
  m_deregistrations_ = registry_->GetCounter("svc.service.deregistrations");
  m_modifications_ = registry_->GetCounter("svc.service.modifications");
  m_rejections_ = registry_->GetCounter("svc.service.rejections");
  m_degraded_ =
      registry_->GetCounter("svc.service.degraded_registrations");
  m_active_ = registry_->GetGauge("svc.service.active_queries");
  m_maintenance_ = registry_->GetHistogram(
      maintenance_ == sim::PlanMaintenance::kIncremental
          ? "svc.plan_maintenance.incremental_seconds"
          : "svc.plan_maintenance.rebuild_seconds");
}

void QueryService::RecordMaintenance(double seconds) {
  if (m_maintenance_ != nullptr) m_maintenance_->Record(seconds);
}

Status QueryService::Apply(const workload::ChurnOp& op,
                           sim::ServiceOps& ops) {
  EnsureInstruments();
  Status st;
  switch (op.kind) {
    case workload::ChurnOp::Kind::kRegister:
      st = DoRegister(op, ops);
      break;
    case workload::ChurnOp::Kind::kModify:
      st = DoModify(op, ops);
      break;
    case workload::ChurnOp::Kind::kDeregister:
      st = DoDeregister(op, ops);
      break;
  }
  if (m_active_ != nullptr) {
    m_active_->Set(static_cast<double>(live_.size()));
  }
  return st;
}

Status QueryService::DoRegister(const workload::ChurnOp& op,
                                sim::ServiceOps& ops) {
  PolynomialQuery query = op.query;
  if (!(query.qab > 0.0)) {
    ops.AdmissionReject(query.id, 0.0, admission_.recompute_budget,
                        /*reason=*/2);
    ++rejections_;
    if (m_rejections_ != nullptr) m_rejections_->Inc();
    return Status::OK();
  }
  int attempts = 0;
  double estimate = 0.0;
  core::QueryPlan plan;
  for (;;) {
    Result<core::QueryPlan> trial = ops.TrialPlan(query);
    if (!trial.ok()) {
      const int reason =
          trial.status().code() == StatusCode::kInvalidArgument ||
                  trial.status().code() == StatusCode::kOutOfRange
              ? 2
              : 1;
      ops.AdmissionReject(query.id, 0.0, admission_.recompute_budget,
                          reason);
      ++rejections_;
      if (m_rejections_ != nullptr) m_rejections_->Inc();
      return Status::OK();
    }
    plan = std::move(*trial);
    estimate = PlanRecomputeEstimate(plan);
    if (used_budget_ + estimate <= admission_.recompute_budget) break;
    if (admission_.policy != AdmissionConfig::Policy::kDegrade ||
        attempts >= admission_.max_degrade_attempts) {
      ops.AdmissionReject(query.id, estimate, admission_.recompute_budget,
                          /*reason=*/0);
      ++rejections_;
      if (m_rejections_ != nullptr) m_rejections_->Inc();
      return Status::OK();
    }
    // A looser QAB lowers the modeled recompute rate; widen and re-cost.
    query.qab *= admission_.degrade_factor;
    ++attempts;
  }
  const double start = Now();
  POLYDAB_RETURN_NOT_OK(
      ops.Register(query, std::move(plan), estimate, attempts));
  RecordMaintenance(Now() - start);
  live_[query.id] = LiveQuery{query, estimate};
  used_budget_ += estimate;
  ++registrations_;
  if (m_registrations_ != nullptr) m_registrations_->Inc();
  if (attempts > 0) {
    ++degraded_;
    if (m_degraded_ != nullptr) m_degraded_->Inc();
  }
  return Status::OK();
}

Status QueryService::DoModify(const workload::ChurnOp& op,
                              sim::ServiceOps& ops) {
  auto it = live_.find(op.query_id);
  // The schedule assigns lifetimes before admission's verdict is known;
  // ops against ids that never registered are silently dropped.
  if (it == live_.end()) return Status::OK();
  if (!(op.new_qab > 0.0)) return Status::OK();
  PolynomialQuery query = it->second.query;
  query.qab = op.new_qab;
  Result<core::QueryPlan> trial = ops.TrialPlan(query);
  // A failed re-solve keeps the old plan; the modify is dropped rather
  // than leaving the query in a half-updated state.
  if (!trial.ok()) return Status::OK();
  const double estimate = PlanRecomputeEstimate(*trial);
  const double start = Now();
  POLYDAB_RETURN_NOT_OK(
      ops.Modify(op.query_id, op.new_qab, std::move(*trial)));
  RecordMaintenance(Now() - start);
  used_budget_ += estimate - it->second.estimate;
  it->second.query.qab = op.new_qab;
  it->second.estimate = estimate;
  ++modifications_;
  if (m_modifications_ != nullptr) m_modifications_->Inc();
  return Status::OK();
}

namespace {
constexpr char kStateVersion[] = "polydab.svcstate.v1";
}  // namespace

std::string QueryService::SnapshotState() const {
  // Line format, one record per line; every double goes through the
  // recovery codec so the round trip is bit-exact. The schedule itself is
  // reconstructed by the caller (same workload config), so only the
  // cursor is recorded.
  std::string out = kStateVersion;
  out += "\nnext_op ";
  out += std::to_string(next_op_);
  out += "\nused ";
  out += recovery::EncodeDouble(used_budget_);
  out += "\ncounts ";
  out += std::to_string(registrations_);
  out += ' ';
  out += std::to_string(deregistrations_);
  out += ' ';
  out += std::to_string(modifications_);
  out += ' ';
  out += std::to_string(rejections_);
  out += ' ';
  out += std::to_string(degraded_);
  for (const auto& [id, lq] : live_) {
    out += "\nlive ";
    out += std::to_string(id);
    out += ' ';
    out += recovery::EncodeDouble(lq.query.qab);
    out += ' ';
    out += recovery::EncodeDouble(lq.estimate);
    out += ' ';
    // EncodePolynomial never contains spaces, so it can close the line.
    out += recovery::EncodePolynomial(lq.query.p);
  }
  return out;
}

Status QueryService::RestoreState(const std::string& state) {
  std::istringstream in(state);
  std::string line;
  if (!std::getline(in, line) || line != kStateVersion) {
    return Status::InvalidArgument(
        "service state: expected version header '" +
        std::string(kStateVersion) + "', found '" + line + "'");
  }
  live_.clear();
  bool have_next = false, have_used = false, have_counts = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "next_op") {
      long long v = 0;
      ls >> v;
      if (ls.fail() || v < 0) {
        return Status::InvalidArgument("service state: bad next_op line");
      }
      next_op_ = static_cast<size_t>(v);
      have_next = true;
    } else if (key == "used") {
      std::string tok;
      ls >> tok;
      POLYDAB_RETURN_NOT_OK(recovery::DecodeDouble(tok, &used_budget_));
      have_used = true;
    } else if (key == "counts") {
      ls >> registrations_ >> deregistrations_ >> modifications_ >>
          rejections_ >> degraded_;
      if (ls.fail()) {
        return Status::InvalidArgument("service state: bad counts line");
      }
      have_counts = true;
    } else if (key == "live") {
      int id = 0;
      std::string qab_tok, est_tok, poly_tok;
      ls >> id >> qab_tok >> est_tok >> poly_tok;
      if (ls.fail()) {
        return Status::InvalidArgument("service state: bad live line");
      }
      LiveQuery lq;
      lq.query.id = id;
      POLYDAB_RETURN_NOT_OK(recovery::DecodeDouble(qab_tok, &lq.query.qab));
      POLYDAB_RETURN_NOT_OK(recovery::DecodeDouble(est_tok, &lq.estimate));
      POLYDAB_RETURN_NOT_OK(recovery::DecodePolynomial(poly_tok, &lq.query.p));
      if (!live_.emplace(id, std::move(lq)).second) {
        return Status::InvalidArgument(
            "service state: duplicate live query id " + std::to_string(id));
      }
    } else {
      return Status::InvalidArgument("service state: unknown key '" + key +
                                     "'");
    }
  }
  if (!have_next || !have_used || !have_counts) {
    return Status::InvalidArgument(
        "service state: missing next_op/used/counts record");
  }
  if (next_op_ > schedule_.size()) {
    return Status::InvalidArgument(
        "service state: cursor " + std::to_string(next_op_) +
        " beyond schedule length " + std::to_string(schedule_.size()));
  }
  return Status::OK();
}

Status QueryService::DoDeregister(const workload::ChurnOp& op,
                                  sim::ServiceOps& ops) {
  auto it = live_.find(op.query_id);
  if (it == live_.end()) return Status::OK();
  const double start = Now();
  POLYDAB_RETURN_NOT_OK(ops.Deregister(op.query_id));
  RecordMaintenance(Now() - start);
  used_budget_ -= it->second.estimate;
  live_.erase(it);
  ++deregistrations_;
  if (m_deregistrations_ != nullptr) m_deregistrations_->Inc();
  return Status::OK();
}

}  // namespace polydab::svc
