#ifndef POLYDAB_SVC_QUERY_SERVICE_H_
#define POLYDAB_SVC_QUERY_SERVICE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/planner.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "workload/churn_gen.h"

/// \file query_service.h
/// Live continuous-query service layer (docs/SERVICE.md): a front end over
/// the simulation engine that registers, modifies and deregisters queries
/// at runtime, with admission control against a per-coordinator recompute
/// budget. The service is a sim::ServiceHooks driver — the engine calls it
/// once per tick and it replays its churn schedule through the engine's
/// ServiceOps, so all plan maintenance (EQI merge/split, shard
/// re-assignment, filter re-shipping) happens inside the engine and is
/// covered by the trace invariants. A service with an empty schedule
/// issues no ops and leaves the run byte-identical to the fixed-query
/// path.

namespace polydab::svc {

/// Admission-control policy for new registrations.
struct AdmissionConfig {
  /// What to do when a registration's estimated recompute rate would push
  /// the coordinator past its budget.
  enum class Policy : uint8_t {
    kReject,   ///< refuse the registration (admission_reject, reason 0)
    kDegrade,  ///< widen the QAB until the estimate fits, then register
  };

  /// Total modeled recomputations/second the coordinator will accept
  /// across all live queries. Infinite (the default) admits everything.
  double recompute_budget = std::numeric_limits<double>::infinity();
  Policy policy = Policy::kReject;
  /// kDegrade: how many QAB widenings to try before giving up, and the
  /// multiplicative factor per attempt. A looser QAB lowers the modeled
  /// recompute rate, trading fidelity for admission.
  int max_degrade_attempts = 4;
  double degrade_factor = 2.0;
};

/// Serialization name: "reject" / "degrade".
const char* Name(AdmissionConfig::Policy policy);

/// \brief Replays a churn schedule (workload/churn_gen.h) through the
/// engine with admission control.
///
/// Per-registration flow: TrialPlan costs the query (sum of the plan
/// parts' modeled recompute rates); if the budget would be exceeded, the
/// policy either rejects or degrades (QAB widening + re-plan). Modifies
/// re-plan under the new QAB and update the budget charge; deregisters
/// release it. Ops scheduled against ids that were rejected (or never
/// registered) are skipped silently — the generator schedules a lifetime
/// for every arrival without knowing admission's verdict.
///
/// When a MetricRegistry is supplied, the `svc.*` instruments are created
/// lazily at the first executed op, so runs without churn record no
/// service metrics at all: counters `svc.service.{registrations,
/// deregistrations, modifications, rejections, degraded_registrations}`,
/// gauge `svc.service.active_queries`, and wall-clock histograms
/// `svc.plan_maintenance.{incremental,rebuild}_seconds` (selected by the
/// maintenance mode) around each engine churn transaction.
class QueryService final : public sim::ServiceHooks {
 public:
  QueryService(const AdmissionConfig& admission,
               std::vector<workload::ChurnOp> schedule,
               obs::MetricRegistry* registry,
               sim::PlanMaintenance maintenance);

  /// Engine callback: apply every scheduled op with time <= now.
  Status OnTick(int tick, double now, sim::ServiceOps& ops) override;

  /// Crash-recovery round trip (src/recovery/, docs/RECOVERY.md): the
  /// driver's full mutable bookkeeping — schedule cursor, live-query
  /// table with admission charges, outcome counters — in a versioned
  /// line format embedded opaquely in the engine checkpoint. Restore is
  /// strict: version skew, unknown keys, or malformed values are
  /// InvalidArgument, never a silent partial load.
  std::string SnapshotState() const override;
  Status RestoreState(const std::string& state) override;

  // Outcome accessors (tests, run reports).
  int64_t registrations() const { return registrations_; }
  int64_t deregistrations() const { return deregistrations_; }
  int64_t modifications() const { return modifications_; }
  int64_t rejections() const { return rejections_; }
  int64_t degraded_registrations() const { return degraded_; }
  int64_t active_queries() const {
    return static_cast<int64_t>(live_.size());
  }
  /// Sum of the live queries' admission estimates.
  double used_budget() const { return used_budget_; }

 private:
  /// One live registration's bookkeeping.
  struct LiveQuery {
    PolynomialQuery query;  ///< as registered (QAB reflects modifies)
    double estimate = 0.0;  ///< admission charge currently held
  };

  Status Apply(const workload::ChurnOp& op, sim::ServiceOps& ops);
  Status DoRegister(const workload::ChurnOp& op, sim::ServiceOps& ops);
  Status DoModify(const workload::ChurnOp& op, sim::ServiceOps& ops);
  Status DoDeregister(const workload::ChurnOp& op, sim::ServiceOps& ops);
  void EnsureInstruments();
  void RecordMaintenance(double seconds);

  const AdmissionConfig admission_;
  const std::vector<workload::ChurnOp> schedule_;  // sorted by time
  obs::MetricRegistry* const registry_;            // may be null
  const sim::PlanMaintenance maintenance_;

  size_t next_op_ = 0;
  std::map<int, LiveQuery> live_;
  double used_budget_ = 0.0;
  int64_t registrations_ = 0;
  int64_t deregistrations_ = 0;
  int64_t modifications_ = 0;
  int64_t rejections_ = 0;
  int64_t degraded_ = 0;

  // Lazily-created instruments; null until the first op executes.
  obs::Counter* m_registrations_ = nullptr;
  obs::Counter* m_deregistrations_ = nullptr;
  obs::Counter* m_modifications_ = nullptr;
  obs::Counter* m_rejections_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  obs::Gauge* m_active_ = nullptr;
  obs::Histogram* m_maintenance_ = nullptr;
};

/// \brief Modeled recompute rate of a solved plan: the admission
/// controller's costing unit, summed over plan parts. Never-stale parts
/// (LAQs) legitimately cost zero.
double PlanRecomputeEstimate(const core::QueryPlan& plan);

}  // namespace polydab::svc

#endif  // POLYDAB_SVC_QUERY_SERVICE_H_
